//! The Ditto client: client-centric `Get`/`Set` with sample-based eviction
//! and distributed adaptive caching (§4.2, §4.3).
//!
//! One `DittoClient` is owned by each application thread.  All data-path
//! operations use only one-sided verbs against the memory pool, and the
//! independent verbs of each step are issued together behind one RNIC
//! doorbell (see `ditto_dm::batch` and `ditto_dm::wqe`):
//!
//! * **Get** — one doorbell batch `RDMA_READ`ing the primary *and* secondary
//!   buckets, one `RDMA_READ` of the object, then an asynchronous
//!   `RDMA_WRITE` of the stateless access information and a
//!   (frequency-counter-cached) `RDMA_FAA` of the access count.
//! * **Set** — one doorbell batch carrying the object `RDMA_WRITE` together
//!   with both bucket `RDMA_READ`s, an `RDMA_CAS` of the slot's atomic
//!   field, plus the asynchronous metadata write.
//! * **Eviction** — one `RDMA_READ` sampling K consecutive slots (or, in the
//!   scattered-metadata ablation, one doorbell batch of K slot READs), a
//!   per-expert priority evaluation, a weighted victim choice, an `RDMA_FAA`
//!   on the global history counter and an `RDMA_CAS` converting the victim
//!   slot into an embedded history entry.
//!
//! With `enable_async_completion` (the default) each step runs on the
//! **posted-WQE/polled-completion** model instead of a synchronous batch:
//! the lookup posts both bucket READs, polls the primary's completion and
//! decodes it *while the secondary is still in flight*; `Set` posts its
//! object WRITE unsignalled (never waited for) next to the bucket READs; a
//! hit's due frequency-counter FAA rides unsignalled next to the object
//! READ; and the eviction sampler decodes and scores candidates as
//! completions drain.  The verb sequence — and therefore cache behaviour
//! and message counts — is byte-identical to the synchronous batch (see
//! `tests/async_parity.rs`); only the charged latency shrinks, because the
//! client CPU work (`cpu_decode_slot_ns` per slot, `cpu_score_candidate_ns`
//! per candidate) overlaps the flights, and `end_op` simply drains whatever
//! is still outstanding.  `enable_async_completion = false` keeps the
//! synchronous post-all/wait-all doorbell batches — the ablation the
//! pipelined path is measured against.
//!
//! The data path is **allocation-free in steady state**: bucket and sample
//! bytes land in per-client scratch buffers, slots decode from borrowed
//! bytes into fixed-capacity [`InlineVec`]s, objects decode through
//! [`object::view`] without copying, and [`DittoClient::get_into`] writes
//! the value into a caller-provided buffer.  `enable_doorbell_batching =
//! false` issues the identical verb sequence one round trip at a time — the
//! ablation quantified by the `ops_bench` microbenchmark.
//!
//! With the hash table striped over several memory nodes (see
//! `ditto_dm::topology` and [`crate::hashtable`]), the verbs of one batch
//! fan out across the nodes' NICs: the two bucket READs of a lookup may
//! target two nodes, the object lands stripe-local to its primary bucket,
//! and eviction samples split per node — all decisions are made in global
//! index space, so a striped non-adaptive cache behaves byte-for-byte like
//! a single-node one (enforced by `tests/striped_parity.rs`).  The
//! adaptive machinery's sharded history (one counter per node) only
//! *approximates* the single global FIFO — see [`crate::history`] — so
//! adaptive weight trajectories may differ slightly across pool sizes.
//! Every operation revalidates the client's placement snapshot against the
//! pool's resize epoch, picking up online `add_node`/`drain_node` calls.

use crate::adaptive::{weight_wire, ExpertWeights};
use crate::cache::MigrationProgress;
use crate::cache::{DittoCache, JOURNAL_SLOTS, JOURNAL_SLOT_BYTES};
use crate::config::DittoConfig;
use crate::error::CacheResult;
use crate::fc_cache::{FcCache, FcFlushes};
use crate::hash::{fingerprint, fnv1a64};
use crate::hashtable::SampleFriendlyHashTable;
use crate::history::{expert_bitmap, EvictionHistory};
use crate::inline::InlineVec;
use crate::local_tier::{CoherenceBoard, LocalTier, TierProbe, FREQ_ADMIT_THRESHOLD, POLICY_FREQ};
use crate::object;
use crate::recovery::{CrashPoint, RecoveryReport};
use crate::slot::{AtomicField, Slot, BUCKET_SIZE, SLOTS_PER_BUCKET, SLOT_SIZE};
use crate::stats::CacheStats;
use ditto_algorithms::{AccessContext, AccessKind, CacheAlgorithm, Metadata, EXT_WORDS};
use ditto_dm::alloc::{AllocService, ClientAllocator};
use ditto_dm::batch::MAX_BATCH;
use ditto_dm::migration::WriteDisposition;
use ditto_dm::rpc::{ALLOC_SERVICE, WEIGHT_SERVICE};
use ditto_dm::{
    DmClient, DmError, DmResult, EventKind, MigrationEngine, MigrationState, Phase, PoolTopology,
    RecoveryPhase, RemoteAddr, StripedAllocator, RECONCILE_POISON,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Maximum CAS retries before an operation gives up.
const MAX_RETRIES: usize = 8;
/// Simulated back-off charged to a client whose slot CAS lost a race before
/// it retries (bounded retry/back-off instead of an immediate hot respin).
const CAS_RETRY_BACKOFF_NS: u64 = 200;
/// Maximum eviction attempts while trying to free memory for one allocation.
const MAX_EVICTION_ATTEMPTS: usize = 256;
/// Simulated back-off charged between retries of a transiently faulted verb.
const VERB_RETRY_BACKOFF_NS: u64 = 500;

/// Retries transiently faulted verbs ([`DmError::VerbFailed`] /
/// [`DmError::VerbTimeout`]) up to [`MAX_RETRIES`] tries with a short
/// charged back-off.  Errors against a fail-stopped node — and every
/// non-transient error — propagate immediately: retrying a dead node's
/// verbs only burns simulated time.
fn with_retry<T>(dm: &DmClient, mut f: impl FnMut(&DmClient) -> DmResult<T>) -> DmResult<T> {
    let mut attempt = 0;
    loop {
        match f(dm) {
            Ok(v) => return Ok(v),
            Err(e) => {
                attempt += 1;
                let retryable = match e {
                    DmError::VerbFailed { mn_id } | DmError::VerbTimeout { mn_id } => {
                        !dm.node_failed(mn_id)
                    }
                    _ => false,
                };
                if !retryable || attempt >= MAX_RETRIES {
                    return Err(e);
                }
                dm.pool().stats().record_verb_retry(VERB_RETRY_BACKOFF_NS);
                dm.advance_ns(VERB_RETRY_BACKOFF_NS);
            }
        }
    }
}

/// Books a faulted verb round for a retry.  When `e` is transient and its
/// node is still alive, the retry back-off is recorded and charged and the
/// caller should redo the round; fail-stopped nodes and non-transient
/// errors return `false` so the caller degrades instead of spinning.
///
/// A free function over the client's `DmClient` field (not a method) so it
/// can run while `bucket_buf` is split-borrowed inside the lookup.
fn verb_fault_retryable(dm: &DmClient, e: &DmError) -> bool {
    let retryable = match *e {
        DmError::VerbFailed { mn_id } | DmError::VerbTimeout { mn_id } => !dm.node_failed(mn_id),
        _ => false,
    };
    if retryable {
        dm.pool().stats().record_verb_retry(VERB_RETRY_BACKOFF_NS);
        dm.advance_ns(VERB_RETRY_BACKOFF_NS);
    }
    retryable
}

/// Slots surfaced by one lookup: the primary and secondary buckets.
const SEARCH_SLOTS: usize = 2 * SLOTS_PER_BUCKET;
/// Capacity of the eviction-candidate buffer: the accumulation loop stops as
/// soon as it holds ≥2 candidates, so it can reach at most
/// `1 + MAX_SAMPLE_SIZE` entries (plus headroom).
const CANDIDATES_CAP: usize = 2 * DittoConfig::MAX_SAMPLE_SIZE;
/// Upper bound on configured experts (the expert bitmap is 64 bits wide).
const MAX_EXPERTS: usize = 64;

type SearchSlots = InlineVec<(RemoteAddr, Slot), SEARCH_SLOTS>;
type Candidates = InlineVec<(RemoteAddr, Slot), CANDIDATES_CAP>;

/// A per-thread Ditto cache client.
pub struct DittoClient {
    dm: DmClient,
    config: Arc<DittoConfig>,
    table: SampleFriendlyHashTable,
    history: EvictionHistory,
    scratch: RemoteAddr,
    experts: Arc<Vec<Arc<dyn CacheAlgorithm>>>,
    stats: Arc<CacheStats>,
    alloc: StripedAllocator,
    fc: FcCache,
    /// The compute-side local tier ([`crate::local_tier`]); `None` unless
    /// [`DittoConfig::with_local_tier`] enabled it.
    tier: Option<LocalTier>,
    /// Shared per-key-hash mutation epochs: bumped by every slot-word
    /// mutation this client performs, checked on every tier probe.
    board: Arc<CoherenceBoard>,
    weights: ExpertWeights,
    rng: StdRng,
    /// Per-shard estimates of the sharded global history counters.
    counter_estimates: Vec<u64>,
    counters_known: Vec<bool>,
    /// Monotone miss count; per-shard refresh staleness is measured against
    /// it so refreshing one shard does not postpone another's refresh.
    miss_count: u64,
    last_refresh_miss_count: Vec<u64>,
    /// Topology snapshot backing allocation placement; revalidated against
    /// the pool's resize epoch at every operation.
    topology: PoolTopology,
    topo_epoch: u64,
    /// The bucket-range migration engine (shared with the cache); provides
    /// the per-stripe locks of the dual-write protocol and the job queue
    /// drained by [`DittoClient::pump_migration`].
    engine: Arc<MigrationEngine>,
    /// Stripe-directory version captured at the start of the current
    /// operation; a bump since then means a cutover raced the operation
    /// (client redirect rule 3 of `ditto_dm::migration`).
    mig_token: u64,
    /// Adaptive message-bound lookup hybrid: whether lookups currently
    /// short-circuit after a primary-bucket hit (re-judged every
    /// `adaptive_lookup_interval` operations from the pool's message
    /// counters).
    lookup_short_circuit: bool,
    lookup_ops: u64,
    last_decision_messages: Vec<u64>,
    last_decision_clock_ns: u64,
    use_extension: bool,
    /// Set once an allocation has seen the pool full; under pressure the
    /// client evicts and recycles locally instead of paying a doomed
    /// segment-`ALLOC` RPC per `Set`.
    mem_pressure: bool,
    /// Blocks the allocation currently in flight needs; the adaptive hoard
    /// cap keeps at least this much parked per node so an evicting client
    /// does not hand the blocks it just freed straight back to the node.
    pending_alloc_blocks: u64,
    /// Set by [`Self::resolve_stale_cas`] when a cutover-racing insert could
    /// not be rolled back: another client displaced the slot word and freed
    /// the object behind it, so the in-flight `Set` must re-allocate before
    /// retrying and must not free the original allocation on exit.
    alloc_abandoned: bool,
    /// This client's crash-recovery journal slot
    /// ([`DittoConfig::enable_crash_recovery_journal`]); `None` when the
    /// journal is disabled or the client id falls outside the region.
    journal: Option<RemoteAddr>,
    /// Base of the whole journal region — recovery reads *other* clients'
    /// slots through it ([`DittoClient::recover_crashed_client`]).
    journal_base: Option<RemoteAddr>,
    /// Armed crash point for failover tests (see
    /// [`DittoClient::arm_set_crash`]); fires once.
    crash_armed: Option<CrashPoint>,
    /// Set when an armed crash point fired: the in-flight `Set` stopped
    /// dead mid-protocol, skipping every cleanup step after the point.
    crashed: bool,
    /// Scratch for the two bucket READs of a lookup (front: primary).
    bucket_buf: Box<[u8]>,
    /// Scratch for eviction-sample slot READs.
    sample_buf: Box<[u8]>,
    /// Scratch for object READs; grows to the largest object seen.
    obj_buf: Vec<u8>,
    /// Scratch for `Set` object encoding; grows to the largest object set.
    encode_buf: Vec<u8>,
}

impl DittoClient {
    pub(crate) fn new(cache: DittoCache) -> Self {
        let config = cache.config_arc();
        let dm = cache.pool().connect();
        // The snapshot carries its own epoch; reading the pool's epoch
        // separately could race a concurrent resize and pin a stale
        // snapshot forever.
        let topology = cache.pool().topology();
        let topo_epoch = topology.epoch();
        let segment = config.alloc_segment_objects.max(1) * config.avg_object_blocks() * 64;
        let alloc = StripedAllocator::new(topology.active(), segment);
        let num_shards = cache.history().num_shards() as usize;
        let fc = FcCache::new(config.fc_threshold, config.fc_capacity_entries());
        let weights = ExpertWeights::new(
            cache.experts().len(),
            config.learning_rate,
            config.discount_rate(),
            if config.enable_lazy_weight_update {
                config.weight_sync_batch
            } else {
                1
            },
        );
        let seed = 0x5eed_0000 + dm.client_id() as u64;
        let tier = (config.local_tier_capacity > 0).then(|| {
            LocalTier::new(
                config.local_tier_capacity,
                config.local_tier_lease_ns,
                config.learning_rate,
                config.discount_rate(),
            )
        });
        DittoClient {
            use_extension: cache.uses_extension(),
            table: cache.table(),
            history: cache.history(),
            scratch: cache.scratch(),
            experts: cache.experts_arc(),
            stats: cache.stats_arc(),
            alloc,
            fc,
            tier,
            board: cache.board_arc(),
            weights,
            rng: StdRng::seed_from_u64(seed),
            counter_estimates: vec![0; num_shards],
            counters_known: vec![false; num_shards],
            miss_count: 0,
            last_refresh_miss_count: vec![0; num_shards],
            topology,
            topo_epoch,
            engine: cache.migration_arc(),
            mig_token: 0,
            lookup_short_circuit: false,
            lookup_ops: 0,
            last_decision_messages: Vec::new(),
            last_decision_clock_ns: 0,
            mem_pressure: false,
            pending_alloc_blocks: 0,
            alloc_abandoned: false,
            journal: cache.journal_slot(dm.client_id()),
            journal_base: cache.journal_base(),
            crash_armed: None,
            crashed: false,
            bucket_buf: vec![0u8; 2 * BUCKET_SIZE].into_boxed_slice(),
            sample_buf: vec![0u8; DittoConfig::MAX_SAMPLE_SIZE * SLOT_SIZE].into_boxed_slice(),
            obj_buf: Vec::new(),
            encode_buf: Vec::new(),
            config,
            dm,
        }
    }

    /// The underlying DM client (simulated clock, verb statistics).
    pub fn dm(&self) -> &DmClient {
        &self.dm
    }

    /// The client's current local expert weights.
    pub fn local_weights(&self) -> &[f64] {
        self.weights.weights()
    }

    /// Looks up `key`, returning the value on a hit.
    ///
    /// Allocates the returned buffer; the allocation-free variant is
    /// [`DittoClient::get_into`].
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        if self.get_into(key, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Looks up `key`; on a hit, clears `out`, appends the value and returns
    /// `true`.  Reusing `out` across calls makes the steady-state `Get` path
    /// allocation-free.
    pub fn get_into(&mut self, key: &[u8], out: &mut Vec<u8>) -> bool {
        self.maybe_refresh_topology();
        self.maybe_update_lookup_mode();
        self.mig_token = self.table.directory().version();
        self.dm.begin_op();
        let hit = self.get_inner(key, out);
        self.dm.end_op();
        hit
    }

    /// Inserts or updates `key` with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the object does not fit the 254-block (≈16 KiB) size-class
    /// limit or the 48-bit slot pointer, or if the memory pool cannot be
    /// made to fit the object even after repeated evictions (a sizing bug
    /// rather than a run-time condition).  The variant with typed errors is
    /// [`DittoClient::try_set`].
    pub fn set(&mut self, key: &[u8], value: &[u8]) {
        self.try_set(key, value).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Inserts or updates `key` with `value`, reporting pointer-encoding
    /// overflows as typed [`crate::CacheError`]s instead of panicking.
    ///
    /// # Panics
    ///
    /// Still panics on pool-sizing bugs (see [`DittoClient::set`]).
    pub fn try_set(&mut self, key: &[u8], value: &[u8]) -> CacheResult<()> {
        self.maybe_refresh_topology();
        self.mig_token = self.table.directory().version();
        self.dm.begin_op();
        let result = self.set_inner(key, value);
        self.dm.end_op();
        result
    }

    /// Revalidates the cached topology snapshot against the pool's resize
    /// epoch, refreshing the allocator's active-node set after an online
    /// `add_node`/`drain_node` (cheap epoch compare in steady state).
    fn maybe_refresh_topology(&mut self) {
        let epoch = self.dm.resize_epoch();
        if epoch != self.topo_epoch {
            self.topology = self.dm.pool().topology();
            self.alloc.set_active(self.topology.active());
            self.topo_epoch = epoch;
            // The active set changed, so the memory-pressure verdict is
            // stale: an added node has fresh capacity to probe, and after a
            // drain the pressure state re-establishes itself on the first
            // failing allocation anyway.
            self.mem_pressure = false;
        }
    }

    /// Re-judges the adaptive lookup hybrid from the pool's message
    /// counters: when the most-loaded RNIC would need longer to serve the
    /// interval's messages than the clients took to issue them, the run is
    /// message-bound and lookups switch to the short-circuiting mode
    /// (primary bucket first, secondary only on a primary miss); otherwise
    /// the batched both-bucket fetch wins on latency.
    fn maybe_update_lookup_mode(&mut self) {
        if !self.config.enable_adaptive_lookup {
            return;
        }
        self.lookup_ops += 1;
        if self.lookup_ops < self.config.adaptive_lookup_interval {
            return;
        }
        self.lookup_ops = 0;
        let snaps = self.dm.pool().stats().node_snapshots();
        let now = self.dm.now_ns();
        let max_delta = snaps
            .iter()
            .enumerate()
            .map(|(i, s)| {
                s.messages
                    .saturating_sub(self.last_decision_messages.get(i).copied().unwrap_or(0))
            })
            .max()
            .unwrap_or(0);
        let elapsed_ns = now.saturating_sub(self.last_decision_clock_ns).max(1);
        let nic_ns =
            max_delta.saturating_mul(1_000_000_000) / self.dm.config().mn_message_rate.max(1);
        self.lookup_short_circuit = nic_ns > elapsed_ns;
        self.last_decision_messages.clear();
        self.last_decision_messages
            .extend(snaps.iter().map(|s| s.messages));
        self.last_decision_clock_ns = now;
    }

    // ------------------------------------------------------------------
    // Migration protocol (see `ditto_dm::migration`, client redirect rules)
    // ------------------------------------------------------------------

    /// CASes a slot's atomic field and confirms the write against the
    /// stripe directory.  While the slot's stripe is mid-move the new value
    /// is mirrored into the destination copy under the stripe lock; a CAS
    /// that hit a copy which had already been cut over reports failure so
    /// the caller redoes the operation against the stripe's live home.
    fn slot_cas(&mut self, slot_addr: RemoteAddr, expected: u64, new: u64) -> bool {
        let Ok(observed) = with_retry(&self.dm, |dm| dm.try_cas(slot_addr, expected, new)) else {
            // The CAS kept faulting (NAK'd, never applied) or its node
            // fail-stopped: report a plain failure so the caller re-reads
            // and retries — or gives up — through its usual bounded loop.
            self.record_failed_slot_cas();
            return false;
        };
        if observed != expected {
            // Lost a race with another client's CAS on the same slot: back
            // off briefly before the caller re-reads and retries, and count
            // the failure in the pool's contention accounting.
            self.record_failed_slot_cas();
            return false;
        }
        match self
            .table
            .directory()
            .confirm_write(slot_addr, self.mig_token)
        {
            WriteDisposition::Clean => true,
            WriteDisposition::Stale => self.resolve_stale_cas(slot_addr, expected, new),
            WriteDisposition::Mirror { stripe, .. } => {
                // Serialise against the engine's copy passes, then re-judge:
                // the stripe may have committed while we waited for the lock.
                let lock = self.engine.stripe_lock(stripe);
                let acq = lock.acquire(&self.dm);
                if !acq.is_acquired() {
                    // A wedged holder outlasted the whole retry budget
                    // (crashed client; recovery will reclaim the lease).
                    // Mirror best-effort without the lock — the commit's
                    // reconcile pass squares away any straggler, exactly as
                    // for async metadata mirrors.
                    if let WriteDisposition::Mirror { addr, .. } = self
                        .table
                        .directory()
                        .confirm_write(slot_addr, self.mig_token)
                    {
                        let _ = self.dm.try_write(addr, &new.to_le_bytes());
                    }
                    return true;
                }
                let verdict = match self
                    .table
                    .directory()
                    .confirm_write(slot_addr, self.mig_token)
                {
                    WriteDisposition::Mirror { addr, .. } => {
                        // Best-effort under faults: the commit's
                        // reconcile squares away a lost mirror write.
                        let _ = self.dm.try_write(addr, &new.to_le_bytes());
                        Some(true)
                    }
                    WriteDisposition::Clean => Some(true),
                    // The stripe committed while we waited: the holder
                    // was the commit's reconcile pass, which either
                    // carried the CAS to the new home or swallowed it.
                    // Resolve below (the resolution re-takes the lock).
                    WriteDisposition::Stale => None,
                };
                let _ = lock.release(&self.dm, &acq);
                verdict.unwrap_or_else(|| self.resolve_stale_cas(slot_addr, expected, new))
            }
        }
    }

    /// Resolves a slot CAS whose word CAS *succeeded* but whose address the
    /// directory judged stale — a cutover raced the operation between the
    /// verb and the judgement.  The commit's reconcile pass makes the
    /// outcome deterministic: it swaps every source word to
    /// [`RECONCILE_POISON`] *as* it carries the word's value to the
    /// destination, so a CAS that succeeded can only have landed before the
    /// swap — and was therefore carried.  (A CAS racing the swap from the
    /// other side observes the poison and fails at the verb layer, never
    /// reaching this resolution.)
    fn resolve_stale_cas(&mut self, slot_addr: RemoteAddr, expected: u64, new: u64) -> bool {
        if expected != 0 {
            // Deterministically carried.  `expected` was read off the live
            // copy of the stripe, so the CAS hit the live copy before its
            // reconcile; the reconcile then carried `new` to the stripe's
            // new home.  The write is live and the displaced value is the
            // caller's to clean up, exactly as on the Clean path.
            return true;
        }
        // expected == 0 — an insert into a word read as empty.  Two cases:
        // either the word belonged to the live copy (the insert was carried,
        // and the caller's retry will find the object already installed), or
        // the "empty" read predates a cutover and the raw CAS scribbled on a
        // *recycled* range another stripe now owns (parking reuse).  The
        // cases are indistinguishable from here, but one cleanup covers
        // both: CAS the scribble back out, chasing the word across any
        // later reconciles of the range's owner (the offset within a
        // stripe is invariant across moves).
        let dir = Arc::clone(self.table.directory());
        let mut addr = slot_addr;
        let mut rolled_back = false;
        for _ in 0..MAX_RETRIES {
            let Ok(observed) = with_retry(&self.dm, |dm| dm.try_cas(addr, new, 0)) else {
                // The rollback CAS cannot get through (faults or a dead
                // node): treat the allocation as lost, like the displaced
                // case below — over-abandoning only costs a re-allocation.
                break;
            };
            if observed == new {
                // Undid the insert: whether it was a scribble or a carried
                // install, the object is back in the caller's hands (a
                // carried install just gets re-inserted by the retry).
                rolled_back = true;
                break;
            }
            if observed == RECONCILE_POISON {
                // The owning stripe reconciled again mid-chase; follow the
                // word to the stripe's new home.
                match dir.resolve_vacated(addr) {
                    Some((_, next)) if next != addr => {
                        addr = next;
                        continue;
                    }
                    _ => break,
                }
            }
            // A third value: an evictor or a later insert already displaced
            // the word — and freed the object it pointed at.  The caller
            // must not free (or reuse) its allocation.
            break;
        }
        if !rolled_back {
            self.alloc_abandoned = true;
        }
        self.record_failed_slot_cas();
        false
    }

    /// Books a failed slot CAS in the pool's contention accounting and
    /// backs off before the caller retries.
    fn record_failed_slot_cas(&self) {
        self.dm.advance_ns(CAS_RETRY_BACKOFF_NS);
        self.dm
            .pool()
            .stats()
            .record_cas_retry(CAS_RETRY_BACKOFF_NS);
    }

    /// Asynchronous write of slot metadata, mirrored (best-effort, without
    /// the lock) into the destination copy while the stripe is mid-move;
    /// the commit's reconcile pass squares away any stragglers.
    fn write_slot_meta(&self, addr: RemoteAddr, bytes: &[u8]) {
        // Stateless metadata is best-effort by design (the paper's
        // "stateless information"): a faulted async WRITE only loses one
        // recency update, so errors are ignored rather than retried.
        let _ = self.dm.try_write_async(addr, bytes);
        if let Some(mirror) = self.table.directory().mirror_of(addr) {
            let _ = self.dm.try_write_async(mirror, bytes);
        }
    }

    /// Whether the pipelined posted-WQE completion path is active.  Async
    /// completion rides on doorbell batching; with batching disabled the
    /// sequential ablation path runs regardless.
    fn use_async(&self) -> bool {
        self.config.enable_async_completion && self.config.enable_doorbell_batching
    }

    /// Charges the client CPU cost of decoding `slots` hash-table slots.
    /// Charged identically in both completion modes; on the pipelined path
    /// it overlaps in-flight transfers — which is exactly what the
    /// critical-path attribution ([`ditto_dm::obs::attribution`]) makes
    /// visible: decode time outranks the concurrent flight span, so the
    /// overlapped wire time drops out of the op's serialized total.  The
    /// span also feeds the `phase="decode"` latency histogram when the op
    /// survived the recorder's sampling draw.
    fn charge_decode(&self, slots: usize) {
        let t0 = self.dm.now_ns();
        self.dm
            .advance_ns(slots as u64 * self.config.cpu_decode_slot_ns);
        self.dm
            .record_span(Phase::Decode, t0, self.dm.now_ns(), slots as u32);
    }

    /// Charges the client CPU cost of gathering and scoring `candidates`
    /// eviction candidates (see [`DittoClient::charge_decode`]).
    fn charge_score(&self, candidates: usize) {
        self.dm
            .advance_ns(candidates as u64 * self.config.cpu_score_candidate_ns);
    }

    /// Canonical resident size of an object allocation (whole 64-byte
    /// blocks, matching both the allocator's and the slot's accounting).
    fn resident_bytes_for(size: usize) -> u64 {
        ClientAllocator::blocks_for(size) * 64
    }

    /// Records an object allocation in the pool's per-node resident gauge.
    fn note_object_alloc(&self, addr: RemoteAddr, size: usize) {
        self.dm
            .pool()
            .stats()
            .record_resident_alloc(addr.mn_id, Self::resident_bytes_for(size));
    }

    /// Frees an object's blocks and debits the resident gauge of the node
    /// they lived on — the counter whose drained-node entry reaching zero
    /// allows `MemoryPool::remove_node`.
    fn free_object(&mut self, addr: RemoteAddr, size: usize) {
        self.dm
            .pool()
            .stats()
            .record_resident_free(addr.mn_id, Self::resident_bytes_for(size));
        self.alloc.free(addr, size);
        // Cap the local hoard: blocks parked on this client's free ranges
        // are invisible to every other client, and with many clients on a
        // full pool a net evictor can strand a large share of the memory.
        // Excess goes back to the node, which re-serves it to anyone.
        self.alloc
            .release_excess_adaptive(&self.dm, self.pending_alloc_blocks);
    }

    /// Flushes buffered state: pending frequency-counter increments and
    /// pending expert-weight penalties.  Call at the end of an experiment.
    pub fn flush(&mut self) {
        let flushes = self.fc.flush_all();
        for (addr, delta) in flushes {
            // A persistently faulted flush drops buffered increments (the
            // counters are advisory); the message charge already happened.
            let _ = with_retry(&self.dm, |dm| dm.try_faa(addr, delta));
            self.stats.record_fc_flush();
        }
        if self.weights.pending_updates() > 0 {
            self.sync_weights();
        }
    }

    // ------------------------------------------------------------------
    // Crash-recovery journal (see `recovery` module docs)
    // ------------------------------------------------------------------
    //
    // Slot layout: six little-endian u64 words —
    //   [new_mn, new_off, new_len, old_mn, old_off, old_len]
    // A slot is *armed* iff `new_len` (byte offset 16) is non-zero.  All
    // journal writes are best-effort: the journal narrows the recovery
    // search, it does not gate the data path, so a persistently faulted
    // journal write degrades to "segment sweep finds the orphan anyway".

    /// Arms this client's journal slot with the in-flight allocation and a
    /// zeroed old half.  No-op when the journal is disabled.
    fn journal_arm(&self, new_addr: RemoteAddr, new_len: usize) {
        let Some(slot) = self.journal else { return };
        let mut buf = [0u8; 48];
        buf[0..8].copy_from_slice(&u64::from(new_addr.mn_id).to_le_bytes());
        buf[8..16].copy_from_slice(&new_addr.offset.to_le_bytes());
        buf[16..24].copy_from_slice(&(new_len as u64).to_le_bytes());
        let _ = with_retry(&self.dm, |dm| dm.try_write(slot, &buf));
    }

    /// Records (or zeroes, for `None`) the allocation a publish CAS is
    /// about to displace in the journal's old half.  Must run before
    /// *every* publish CAS while armed — including insert paths that
    /// displace nothing — so a stale old triple from an earlier failed
    /// replace attempt can never be replayed.
    fn journal_set_old(&self, old: Option<(RemoteAddr, usize)>) {
        let Some(slot) = self.journal else { return };
        let mut buf = [0u8; 24];
        if let Some((addr, len)) = old {
            buf[0..8].copy_from_slice(&u64::from(addr.mn_id).to_le_bytes());
            buf[8..16].copy_from_slice(&addr.offset.to_le_bytes());
            buf[16..24].copy_from_slice(&(len as u64).to_le_bytes());
        }
        let _ = with_retry(&self.dm, |dm| dm.try_write(slot.add(24), &buf));
    }

    /// Disarms the journal slot (zeroes the `new_len` validity word) once
    /// the `Set` protocol reaches a self-consistent state.
    fn journal_clear(&self) {
        let Some(slot) = self.journal else { return };
        let _ = with_retry(&self.dm, |dm| dm.try_write(slot.add(16), &[0u8; 8]));
    }

    /// Whether the armed test crash point matches `point`; fires at most
    /// once and marks this client crashed.
    fn crash_fired(&mut self, point: CrashPoint) -> bool {
        if self.crash_armed == Some(point) {
            self.crash_armed = None;
            self.crashed = true;
            return true;
        }
        false
    }

    /// Arms a one-shot crash inside the next `set` for failover tests: the
    /// operation stops dead at `point`, skipping every later protocol step
    /// exactly as a process kill would.
    #[doc(hidden)]
    pub fn arm_set_crash(&mut self, point: CrashPoint) {
        self.crash_armed = Some(point);
        self.crashed = false;
    }

    /// Whether an armed crash point has fired on this client.  A crashed
    /// client must not issue further operations; tests drop it and run
    /// [`DittoClient::recover_crashed_client`] from a survivor.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Returns every block parked on this client's local free ranges to
    /// the memory nodes.  Recovery's segment sweep frees dead-owned ranges
    /// the node still attributes to the dead client; ranges a *live*
    /// client holds parked are invisible to the node, so survivors must
    /// release their hoards (or quiesce) before a sweep runs.
    #[doc(hidden)]
    pub fn release_parked_memory(&mut self) -> u64 {
        self.alloc.release_excess(&self.dm, 0)
    }

    /// Recovers the debris of a crashed client (see the [`crate::recovery`]
    /// module docs for the failure model): steals back its stripe-lock
    /// leases, replays its redo-journal entry against the table to fix the
    /// resident gauge, and sweeps its unreferenced segment space back to
    /// the memory nodes.
    ///
    /// Run from any *live* client once `dead_id` is known dead.  Other
    /// surviving clients must have released their parked free ranges
    /// ([`DittoClient::release_parked_memory`]) or quiesced first — a
    /// parked range inside a dead-owned segment is invisible to the node
    /// and would otherwise be double-freed by the sweep.  The recovering
    /// client releases its own hoard automatically.
    pub fn recover_crashed_client(&mut self, dead_id: u32) -> RecoveryReport {
        let recovery_event = |phase: RecoveryPhase, dm: &DmClient| {
            dm.pool().record_event(
                dm.now_ns(),
                dm.client_id(),
                EventKind::Recovery {
                    dead_client: dead_id,
                    phase,
                },
            );
        };
        // 1. Lock leases: fencing CAS steals, no waiting out the lease.
        // (Each successful steal is recorded in the pool's fault counters
        // by `RemoteLock::reclaim` itself.)
        recovery_event(RecoveryPhase::LockReclaim, &self.dm);
        let mut report = RecoveryReport {
            locks_reclaimed: self.engine.reclaim_stripe_locks(&self.dm, dead_id),
            ..RecoveryReport::default()
        };

        // 2. One forensic scan of the whole table: per-node sorted
        //    (offset, resident bytes) of every referenced allocation.
        //    Both the journal replay and the gap sweep reconcile against
        //    this single snapshot.
        let num_nodes = self.dm.pool().num_nodes();
        let mut refs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); num_nodes as usize];
        for bucket in 0..self.table.num_buckets() {
            for (_, slot) in self.table.read_bucket(&self.dm, bucket) {
                if !slot.atomic.is_object() {
                    continue;
                }
                let addr = slot.atomic.object_addr();
                let resident = Self::resident_bytes_for(slot.atomic.object_bytes() as usize);
                if let Some(node_refs) = refs.get_mut(addr.mn_id as usize) {
                    node_refs.push((addr.offset, resident));
                }
            }
        }
        for node_refs in refs.iter_mut() {
            node_refs.sort_unstable();
        }

        // 3. Journal replay — fixes the *resident gauge* only; the memory
        //    itself is returned by the segment sweep below.  Whichever of
        //    the entry's two allocations the table does not reference is
        //    the orphan still counted as resident.
        recovery_event(RecoveryPhase::JournalReplay, &self.dm);
        if let Some(slot_addr) = self.journal_addr_of(dead_id) {
            let mut buf = [0u8; 48];
            if with_retry(&self.dm, |dm| dm.try_read_into(slot_addr, &mut buf)).is_ok() {
                let word = |i: usize| {
                    u64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().expect("8-byte word"))
                };
                if word(2) != 0 {
                    report.journal_entries_replayed = 1;
                    let new_resident = Self::resident_bytes_for(word(2) as usize);
                    let (new_mn, new_off) = (word(0) as u16, word(1));
                    let published = refs
                        .get(new_mn as usize)
                        .is_some_and(|v| v.binary_search_by_key(&new_off, |&(off, _)| off).is_ok());
                    if published {
                        // Publish CAS landed; the displaced old allocation
                        // (when the entry records one) is the orphan.  It
                        // may live inside a *live* client's segment — which
                        // the dead-owned sweep below never visits — so it
                        // is also freed here; `free_segment` trims the
                        // owner registry, so the sweep cannot double-free
                        // a dead-owned old range.
                        let old_bytes = Self::resident_bytes_for(word(5) as usize);
                        if old_bytes != 0 {
                            let stats = self.dm.pool().stats();
                            stats.record_resident_free(word(3) as u16, old_bytes);
                            stats.record_recovered_object(old_bytes);
                            report.recovered_bytes = old_bytes;
                            report.swept_bytes +=
                                self.sweep_gap(word(3) as u16, word(4), old_bytes);
                        }
                    } else {
                        // Died before (or without) publishing: the journal
                        // entry is the only record of the new allocation,
                        // which may have been carved from a *foreign* live
                        // client's grant (displaced ranges park locally and
                        // get reused) that the dead-owned sweep below never
                        // visits — so it is freed right here.  Guard: when
                        // the node no longer counts the range as granted,
                        // the publish actually landed and a survivor has
                        // since evicted the object and returned the memory;
                        // the gauge is already correct and replaying would
                        // double-debit.
                        let granted = self
                            .dm
                            .pool()
                            .node(new_mn)
                            .is_ok_and(|node| node.range_granted(new_off, new_resident));
                        if granted {
                            let stats = self.dm.pool().stats();
                            stats.record_resident_free(new_mn, new_resident);
                            stats.record_recovered_object(new_resident);
                            report.recovered_bytes = new_resident;
                            // Freeing trims the owner registry, so a range
                            // inside a dead-owned segment is not swept (and
                            // freed) a second time below.
                            report.swept_bytes += self.sweep_gap(new_mn, new_off, new_resident);
                        }
                    }
                    // Disarm the entry so a second recovery pass (two
                    // survivors racing, or a retried harness) is a no-op
                    // instead of a double gauge debit.
                    let _ = with_retry(&self.dm, |dm| dm.try_write(slot_addr.add(16), &[0u8; 8]));
                }
            }
        }

        // 4. Segment gap sweep: return every dead-owned byte no table slot
        //    references.  Our own parked ranges could alias dead-owned
        //    space (we may have evicted the dead client's objects), so the
        //    local hoard goes back first.
        recovery_event(RecoveryPhase::GapSweep, &self.dm);
        self.alloc.release_excess(&self.dm, 0);
        for mn in 0..num_nodes {
            let Ok(node) = self.dm.pool().node(mn) else {
                continue;
            };
            let node_refs = &refs[mn as usize];
            for (seg_off, seg_len) in node.owned_segments(dead_id) {
                let seg_end = seg_off + seg_len;
                let mut cursor = seg_off;
                let from = node_refs.partition_point(|&(off, _)| off < seg_off);
                for &(off, len) in &node_refs[from..] {
                    if off >= seg_end {
                        break;
                    }
                    if off > cursor {
                        report.swept_bytes += self.sweep_gap(mn, cursor, off - cursor);
                    }
                    cursor = cursor.max(off + len);
                }
                if cursor < seg_end {
                    report.swept_bytes += self.sweep_gap(mn, cursor, seg_end - cursor);
                }
            }
        }
        recovery_event(RecoveryPhase::Done, &self.dm);
        report
    }

    /// Journal slot address of client `dead_id`, when the journal exists
    /// and the id falls inside the region.
    fn journal_addr_of(&self, dead_id: u32) -> Option<RemoteAddr> {
        let base = self.journal_base?;
        (u64::from(dead_id) < JOURNAL_SLOTS)
            .then(|| base.add(u64::from(dead_id) * JOURNAL_SLOT_BYTES))
    }

    /// Frees one unreferenced gap of a dead client's segment through the
    /// allocation service (an RPC, so it is charged like any recovery
    /// traffic and works even against fail-stopped verb paths).  Returns
    /// the bytes freed, or 0 when the RPC could not reach the node.
    fn sweep_gap(&self, mn_id: u16, offset: u64, len: u64) -> u64 {
        match self.dm.rpc(
            mn_id,
            ALLOC_SERVICE,
            &AllocService::encode_free(offset, len),
        ) {
            Ok(_) => len,
            Err(_) => 0,
        }
    }

    // ------------------------------------------------------------------
    // Lookup (shared by Get and Set)
    // ------------------------------------------------------------------

    /// Reads the primary and secondary buckets — plus an optional piggybacked
    /// object WRITE from the `Set` path — in one doorbell batch, and scans
    /// the decoded slots (primary bucket first) for a live entry.
    ///
    /// Both buckets are always fetched (the RACE-style lookup the paper
    /// describes): with doorbell batching the second READ rides along almost
    /// for free, and misses plus secondary hits need it anyway.  This trades
    /// one extra RNIC message per primary-bucket hit against the round trip
    /// the seed's short-circuit (primary first, secondary only on miss) paid
    /// on every other lookup; see the ROADMAP note on a message-bound hybrid.
    ///
    /// With `enable_doorbell_batching = false` the *identical* verb sequence
    /// is issued one round trip at a time — the ablation isolates batching
    /// itself, with the verb pattern held constant.  With
    /// `enable_async_completion` (the default) the same verbs are *posted*
    /// instead: the object WRITE rides unsignalled, the primary bucket is
    /// decoded the moment its completion arrives — while the secondary READ
    /// is still in flight — and a primary-bucket hit skips the secondary
    /// decode entirely (its completion is still drained; the READ already
    /// consumed its message either way).
    ///
    /// When the adaptive hybrid has judged the run *message-bound*
    /// (`enable_adaptive_lookup`), a `Get` lookup instead short-circuits:
    /// primary bucket first, secondary only when the key is not there —
    /// one RNIC message saved per primary-bucket hit, at the cost of a
    /// second round trip on the other lookups.
    ///
    /// Either way the lookup follows the migration redirect rules: bucket
    /// addresses translate through the live stripe directory, and the
    /// directory entries are re-checked after the fetch — a stripe cutover
    /// that raced the read triggers a retry against the new addresses.
    fn search(
        &mut self,
        hash: u64,
        fp: u8,
        write: Option<(RemoteAddr, &[u8])>,
    ) -> DmResult<(SearchSlots, Option<(RemoteAddr, Slot)>)> {
        let primary = self.table.primary_bucket(hash);
        let secondary = self.table.secondary_bucket(hash);
        // The piggybacked object WRITE of `Set` rides along until a round's
        // verbs all complete cleanly; after that, retries (migration
        // redirects, taints) re-read the buckets alone.  An error anywhere
        // in a write-carrying round re-arms the WRITE: an unsignalled
        // rider's error completion carries no usable attribution here, and
        // re-posting an idempotent, still-unpublished object WRITE is
        // harmless (fault-free runs clear it on the first round, exactly
        // like the pre-fault code).
        let mut write = write;
        // Token mismatches consume retry budget; reads that saw a stripe
        // reconcile's poison do not — that window is bounded by the
        // in-flight commit, and escaping with a poisoned ("all empty")
        // view would let the caller conclude a key is absent while its
        // entry is being carried to the stripe's new home.  Verb faults
        // burn a budget of their own so a fault storm cannot starve the
        // token-staleness retries (or vice versa).
        let mut attempt = 0;
        let mut fault_attempts = 0;
        loop {
            let last = attempt + 1 >= MAX_RETRIES;
            let ptok = self.table.bucket_entry_token(primary);
            let stok = self.table.bucket_entry_token(secondary);
            let primary_addr = self.table.bucket_addr(primary);
            let secondary_addr = self.table.bucket_addr(secondary);
            // Address translation through the stripe directory is free in
            // simulated time, so the span is an instant (detail = attempt).
            let translate_ns = self.dm.now_ns();
            self.dm
                .record_span(Phase::Translate, translate_ns, translate_ns, attempt as u32);
            let short_circuit = self.lookup_short_circuit && write.is_none();
            let mut slots = SearchSlots::new();
            if short_circuit {
                // (Field-disjoint clock charges: `bucket_buf` stays borrowed
                // across the reads, so `charge_decode` cannot be called.)
                let decode_ns = SLOTS_PER_BUCKET as u64 * self.config.cpu_decode_slot_ns;
                let (primary_buf, secondary_buf) = self.bucket_buf.split_at_mut(BUCKET_SIZE);
                if let Err(e) = self.dm.try_read_into(primary_addr, primary_buf) {
                    fault_attempts += 1;
                    if fault_attempts < MAX_RETRIES && verb_fault_retryable(&self.dm, &e) {
                        continue;
                    }
                    return Err(e);
                }
                if SampleFriendlyHashTable::bucket_tainted(primary_buf) {
                    self.dm.advance_ns(CAS_RETRY_BACKOFF_NS);
                    continue;
                }
                SampleFriendlyHashTable::decode_slots(primary_addr, primary_buf, &mut slots);
                self.dm.advance_ns(decode_ns);
                let t1 = self.dm.now_ns();
                self.dm
                    .record_span(Phase::Decode, t1 - decode_ns, t1, SLOTS_PER_BUCKET as u32);
                if let Some(found) = Self::find_live(&slots, hash, fp) {
                    if self.table.bucket_entry_token(primary) == ptok || last {
                        return Ok((slots, Some(found)));
                    }
                    attempt += 1;
                    continue;
                }
                if let Err(e) = self.dm.try_read_into(secondary_addr, secondary_buf) {
                    fault_attempts += 1;
                    if fault_attempts < MAX_RETRIES && verb_fault_retryable(&self.dm, &e) {
                        continue;
                    }
                    return Err(e);
                }
                if SampleFriendlyHashTable::bucket_tainted(secondary_buf) {
                    self.dm.advance_ns(CAS_RETRY_BACKOFF_NS);
                    continue;
                }
                SampleFriendlyHashTable::decode_slots(secondary_addr, secondary_buf, &mut slots);
                self.dm.advance_ns(decode_ns);
                let t1 = self.dm.now_ns();
                self.dm
                    .record_span(Phase::Decode, t1 - decode_ns, t1, SLOTS_PER_BUCKET as u32);
            } else if self.use_async() {
                // Pipelined lookup: post the object WRITE (if any)
                // *unsignalled* — `Set` never waits for it — and both bucket
                // READs signalled, behind one doorbell per distinct node.
                let (wr_primary, wr_secondary);
                let write_rides = write.is_some();
                {
                    let (primary_buf, secondary_buf) = self.bucket_buf.split_at_mut(BUCKET_SIZE);
                    let mut wq = self.dm.work_queue();
                    if let Some((addr, data)) = write {
                        wq.post_write(addr, data, false);
                    }
                    wr_primary = wq.post_read(primary_addr, primary_buf, true);
                    wr_secondary = wq.post_read(secondary_addr, secondary_buf, true);
                    wq.ring();
                }
                // Wait for the *primary* bucket specifically: a slow
                // unsignalled WRITE queued ahead of it can push its
                // completion past the secondary's on a multi-node pool, so
                // the wr_id is matched rather than assuming arrival order.
                // Then decode while the secondary READ is (possibly) still
                // in flight — the CPU work hides behind the wire.  Error
                // completions (the rider WRITE's included — unsignalled
                // WQEs fault loudly) abort the round.
                let mut secondary_done = false;
                let mut round_err = None;
                loop {
                    let completion = self.dm.poll_cq().expect("bucket completion");
                    if let Err(e) = completion.status.check() {
                        round_err = Some(e);
                        break;
                    }
                    if completion.wr_id == wr_primary {
                        break;
                    }
                    debug_assert_eq!(completion.wr_id, wr_secondary);
                    secondary_done = true;
                }
                if let Some(e) = round_err {
                    // Consume this round's stragglers so the next round's
                    // polling starts from an empty queue.
                    let _ = self.dm.try_drain_cq();
                    fault_attempts += 1;
                    if fault_attempts < MAX_RETRIES && verb_fault_retryable(&self.dm, &e) {
                        continue;
                    }
                    return Err(e);
                }
                if SampleFriendlyHashTable::bucket_tainted(&self.bucket_buf[..BUCKET_SIZE]) {
                    if self.dm.try_drain_cq().is_ok() {
                        // The round's verbs all landed (an unsignalled
                        // WRITE that fails leaves an error completion), so
                        // poison retries re-read the buckets alone.
                        write = None;
                    }
                    self.dm.advance_ns(CAS_RETRY_BACKOFF_NS);
                    continue;
                }
                SampleFriendlyHashTable::decode_slots(
                    primary_addr,
                    &self.bucket_buf[..BUCKET_SIZE],
                    &mut slots,
                );
                self.charge_decode(SLOTS_PER_BUCKET);
                if let Some(found) = Self::find_live(&slots, hash, fp) {
                    // A primary-bucket hit never needs the secondary's
                    // bytes; its completion is drained (by now usually in
                    // the past, hidden behind the primary decode).
                    match self.dm.try_drain_cq() {
                        Ok(_) => write = None,
                        Err(e) => {
                            fault_attempts += 1;
                            if fault_attempts < MAX_RETRIES && verb_fault_retryable(&self.dm, &e) {
                                continue;
                            }
                            return Err(e);
                        }
                    }
                    if self.table.bucket_entry_token(primary) == ptok || last {
                        return Ok((slots, Some(found)));
                    }
                    attempt += 1;
                    continue;
                }
                if !secondary_done {
                    let completion = self.dm.poll_cq().expect("secondary bucket completion");
                    if let Err(e) = completion.status.check() {
                        let _ = self.dm.try_drain_cq();
                        fault_attempts += 1;
                        if fault_attempts < MAX_RETRIES && verb_fault_retryable(&self.dm, &e) {
                            continue;
                        }
                        return Err(e);
                    }
                }
                if write_rides {
                    // A rider-WRITE error on a *different* node can land
                    // after both bucket completions; surface it now.
                    // Fault-free the queue is empty and this costs nothing.
                    match self.dm.try_drain_cq() {
                        Ok(_) => write = None,
                        Err(e) => {
                            fault_attempts += 1;
                            if fault_attempts < MAX_RETRIES && verb_fault_retryable(&self.dm, &e) {
                                continue;
                            }
                            return Err(e);
                        }
                    }
                }
                if SampleFriendlyHashTable::bucket_tainted(&self.bucket_buf[BUCKET_SIZE..]) {
                    self.dm.advance_ns(CAS_RETRY_BACKOFF_NS);
                    continue;
                }
                SampleFriendlyHashTable::decode_slots(
                    secondary_addr,
                    &self.bucket_buf[BUCKET_SIZE..],
                    &mut slots,
                );
                self.charge_decode(SLOTS_PER_BUCKET);
            } else {
                let (primary_buf, secondary_buf) = self.bucket_buf.split_at_mut(BUCKET_SIZE);
                let mut batch = self.dm.batch();
                if let Some((addr, data)) = write {
                    batch
                        .write(addr, data)
                        .expect("a lookup batch holds three verbs");
                }
                batch
                    .read_into(primary_addr, primary_buf)
                    .expect("a lookup batch holds three verbs");
                batch
                    .read_into(secondary_addr, secondary_buf)
                    .expect("a lookup batch holds three verbs");
                match batch.try_execute_mode(self.config.enable_doorbell_batching) {
                    Ok(_) => write = None,
                    Err(e) => {
                        fault_attempts += 1;
                        if fault_attempts < MAX_RETRIES && verb_fault_retryable(&self.dm, &e) {
                            continue;
                        }
                        return Err(e);
                    }
                }
                if SampleFriendlyHashTable::bucket_tainted(primary_buf)
                    || SampleFriendlyHashTable::bucket_tainted(secondary_buf)
                {
                    self.dm.advance_ns(CAS_RETRY_BACKOFF_NS);
                    continue;
                }
                SampleFriendlyHashTable::decode_slots(primary_addr, primary_buf, &mut slots);
                SampleFriendlyHashTable::decode_slots(secondary_addr, secondary_buf, &mut slots);
                self.charge_decode(2 * SLOTS_PER_BUCKET);
            }
            if (self.table.bucket_entry_token(primary) == ptok
                && self.table.bucket_entry_token(secondary) == stok)
                || last
            {
                let found = Self::find_live(&slots, hash, fp);
                return Ok((slots, found));
            }
            attempt += 1;
        }
    }

    fn find_live(slots: &[(RemoteAddr, Slot)], hash: u64, fp: u8) -> Option<(RemoteAddr, Slot)> {
        slots
            .iter()
            .find(|(_, s)| s.atomic.is_object() && s.atomic.fp == fp && s.hash == hash)
            .copied()
    }

    // ------------------------------------------------------------------
    // Get path
    // ------------------------------------------------------------------

    fn get_inner(&mut self, key: &[u8], out: &mut Vec<u8>) -> bool {
        let hash = fnv1a64(key);
        let fp = fingerprint(hash);
        if self.tier.is_some() && self.tier_get(hash, key, out) {
            return true;
        }
        for _ in 0..MAX_RETRIES {
            // Captured *before* the bucket READ: a writer whose publish CAS
            // completed before this capture also bumped before it, so the
            // lookup below observes that writer's slot word — the value
            // admitted under `board_epoch` is current as of the capture.
            // (Capturing after the lookup would leave a window where a
            // racing Set replaces the slot, frees the old object — whose
            // bytes survive until recycled — and bumps, all between our
            // bucket READ and the capture: the stale object READ would then
            // be admitted under an epoch that already includes the bump.)
            let board_epoch = self.board.epoch(hash);
            let Ok((slots, found)) = self.search(hash, fp, None) else {
                // The lookup could not complete within its fault budget
                // (or its node fail-stopped).  Degrade to a miss: for a
                // cache a spurious miss is indistinguishable from an
                // eviction and always linearizable — only serving a wrong
                // *value* would violate the history.
                self.stats.record_miss();
                return false;
            };
            let Some((slot_addr, slot)) = found else {
                self.on_miss(&slots, hash);
                return false;
            };
            let obj_len = slot.atomic.object_bytes() as usize;
            if self.obj_buf.len() < obj_len {
                self.obj_buf.resize(obj_len, 0);
            }
            // Hoist the frequency-counter flush decision *before* the object
            // READ so any due `RDMA_FAA` rides the same doorbell batch as
            // the READ instead of paying its own round trip afterwards
            // (~0.2 µs per hit at `fc_threshold = 10`).  The no-FC-cache
            // ablation keeps its per-hit FAA after key validation (in
            // `record_access`), exactly like the seed it models.
            let freq_addr = SampleFriendlyHashTable::freq_addr(slot_addr);
            let flushes = if self.config.enable_fc_cache {
                self.fc.record(freq_addr)
            } else {
                FcFlushes::default()
            };
            // A faulted object READ degrades to a miss (linearizable — see
            // the lookup fault handling above), taking back the optimistic
            // frequency increment first.
            let degrade_to_miss = |client: &mut Self| {
                if client.config.enable_fc_cache {
                    client.fc.forgive(freq_addr);
                }
                client.stats.record_miss();
            };
            if flushes.is_empty() {
                let obj_addr = slot.atomic.object_addr();
                let buf = &mut self.obj_buf[..obj_len];
                if with_retry(&self.dm, |dm| dm.try_read_into(obj_addr, buf)).is_err() {
                    degrade_to_miss(self);
                    return false;
                }
            } else if self.use_async() {
                // The due FAA flushes ride the posting round *unsignalled*:
                // the client waits for the object bytes only, never for the
                // (slower) atomics.
                let wr_read;
                {
                    let mut wq = self.dm.work_queue();
                    wr_read = wq.post_read(
                        slot.atomic.object_addr(),
                        &mut self.obj_buf[..obj_len],
                        true,
                    );
                    for (addr, delta) in flushes {
                        wq.post_faa(addr, delta, false);
                    }
                    wq.ring();
                }
                // Only the READ's own status decides the hit: a faulted
                // unsignalled FAA merely loses one counter increment, so
                // its error completion is tolerated and polling continues
                // until the READ's wr_id drains.
                let read_err = loop {
                    let completion = self.dm.poll_cq().expect("object READ completion");
                    if completion.wr_id == wr_read {
                        break completion.status.check().err();
                    }
                };
                for _ in 0..flushes.len() {
                    self.stats.record_fc_flush();
                }
                if let Some(_e) = read_err {
                    let _ = self.dm.try_drain_cq();
                    degrade_to_miss(self);
                    return false;
                }
            } else {
                let mut batch = self.dm.batch();
                batch
                    .read_into(slot.atomic.object_addr(), &mut self.obj_buf[..obj_len])
                    .expect("an object batch holds few verbs");
                for (addr, delta) in flushes {
                    batch
                        .faa(addr, delta)
                        .expect("an object batch holds few verbs");
                }
                let batch_result = batch.try_execute_mode(self.config.enable_doorbell_batching);
                for _ in 0..flushes.len() {
                    self.stats.record_fc_flush();
                }
                if batch_result.is_err() {
                    degrade_to_miss(self);
                    return false;
                }
            }
            let Some(view) = object::view(&self.obj_buf[..obj_len]) else {
                // Raced with an eviction that already reused the blocks;
                // take back the optimistic frequency increment.
                if self.config.enable_fc_cache {
                    self.fc.forgive(freq_addr);
                }
                continue;
            };
            if view.key != key {
                // Fingerprint + hash collision or a concurrent replacement.
                if self.config.enable_fc_cache {
                    self.fc.forgive(freq_addr);
                }
                continue;
            }
            let ext = view.ext;
            out.clear();
            out.extend_from_slice(view.value);
            self.record_access(slot_addr, &slot, Some(&ext), AccessKind::Hit);
            self.stats.record_hit();
            // A due FC flush means the key just crossed the flush threshold
            // on this client — unambiguously hot even though the buffered
            // delta reads as zero again.
            let hot =
                !flushes.is_empty() || self.fc.pending_delta(freq_addr) >= FREQ_ADMIT_THRESHOLD;
            self.tier_admit(
                hash,
                key,
                slot_addr,
                slot.atomic.encode(),
                board_epoch,
                hot,
                out,
            );
            if self.config.enable_cooperative_migration
                && !self.topology.is_active(slot.atomic.object_addr().mn_id)
            {
                // Cooperative migration: this hit's object lives on a
                // drained node — re-place it onto an active one right now
                // (the bytes are already in hand) instead of waiting for an
                // update or the background pump.
                let bytes = std::mem::take(&mut self.obj_buf);
                let preferred = self
                    .topology
                    .alloc_node_for(self.table.stripe_of_bucket(self.table.primary_bucket(hash)));
                self.relocate_object_bytes(slot_addr, &slot, &bytes[..obj_len], preferred);
                self.obj_buf = bytes;
            }
            return true;
        }
        self.stats.record_miss();
        false
    }

    fn on_miss(&mut self, slots: &[(RemoteAddr, Slot)], hash: u64) {
        if self.config.adaptive {
            if self.config.enable_lightweight_history {
                self.check_regret(slots, hash);
            } else {
                // Ablation: a separate history structure needs its own index
                // lookup on every miss (tolerated when faulted — the regret
                // check then runs on the bucket bytes already in hand).
                let mut index_buf = [0u8; 64];
                let _ = self.dm.try_read_into(self.scratch, &mut index_buf);
                self.check_regret(slots, hash);
            }
        }
        self.stats.record_miss();
    }

    // ------------------------------------------------------------------
    // Compute-side local tier (see `crate::local_tier`)
    // ------------------------------------------------------------------

    /// Tries to serve `key` from the local tier.  Returns `true` when the
    /// value was copied into `out` — either straight from a lease-valid
    /// entry (zero messages) or after a successful 8-byte slot-word
    /// revalidation (one small READ).
    fn tier_get(&mut self, hash: u64, key: &[u8], out: &mut Vec<u8>) -> bool {
        let board_epoch = self.board.epoch(hash);
        let now = self.dm.now_ns();
        let Some(tier) = self.tier.as_mut() else {
            return false;
        };
        match tier.probe(hash, key, now, board_epoch, out) {
            TierProbe::Absent => false,
            TierProbe::Invalidated => {
                self.stats.record_local_invalidation();
                false
            }
            TierProbe::Served { slot_addr } => {
                self.dm.advance_ns(self.config.cpu_local_hit_ns);
                self.dm
                    .record_span(Phase::LocalHit, now, self.dm.now_ns(), 1);
                self.stats.record_local_hit();
                self.stats.record_hit();
                self.tier_feed_frequency(slot_addr);
                true
            }
            TierProbe::LeaseExpired {
                slot_addr,
                slot_word,
            } => self.tier_revalidate(hash, slot_addr, slot_word, out),
        }
    }

    /// Re-arms an expired lease with one 8-byte READ of the slot's atomic
    /// word.  An exact match proves no publish/eviction CAS touched the
    /// slot, so the cached value is still current; any other outcome —
    /// changed word, `RECONCILE_POISON` after a stripe cutover, a faulted
    /// READ — conservatively drops the entry and falls back to the remote
    /// path.
    fn tier_revalidate(
        &mut self,
        hash: u64,
        slot_addr: RemoteAddr,
        slot_word: u64,
        out: &mut Vec<u8>,
    ) -> bool {
        let t0 = self.dm.now_ns();
        // Same ordering argument as the admission capture in `get_inner`:
        // any bump included here belongs to a CAS the READ below observes.
        let board_epoch = self.board.epoch(hash);
        let mut word = [0u8; 8];
        let matched = with_retry(&self.dm, |dm| dm.try_read_into(slot_addr, &mut word))
            .is_ok_and(|()| u64::from_le_bytes(word) == slot_word);
        if !matched {
            if let Some(tier) = self.tier.as_mut() {
                tier.remove(hash);
            }
            self.stats.record_local_stale_reject();
            return false;
        }
        let now = self.dm.now_ns();
        let Some(tier) = self.tier.as_mut() else {
            return false;
        };
        let slot_addr = tier.renew_and_serve(hash, now, board_epoch, out);
        self.dm.advance_ns(self.config.cpu_local_hit_ns);
        self.dm
            .record_span(Phase::Revalidate, t0, self.dm.now_ns(), 1);
        self.stats.record_local_revalidation();
        self.stats.record_hit();
        self.tier_feed_frequency(slot_addr);
        true
    }

    /// Keeps the *remote* frequency counter of a locally-served key fed, so
    /// remote eviction keeps seeing this client's interest and does not
    /// evict its hottest keys.  Buffered by the FC cache, a local hit costs
    /// an `RDMA_FAA` only every `fc_threshold` accesses (the stateless
    /// last-access timestamp is deliberately *not* refreshed from local
    /// hits — a documented staleness the lease bounds).
    fn tier_feed_frequency(&mut self, slot_addr: RemoteAddr) {
        if !self.config.enable_fc_cache {
            return;
        }
        let freq_addr = SampleFriendlyHashTable::freq_addr(slot_addr);
        for (addr, delta) in self.fc.record(freq_addr) {
            let _ = with_retry(&self.dm, |dm| dm.try_faa(addr, delta));
            self.stats.record_fc_flush();
        }
    }

    /// Offers a validated remote hit to the tier.  `board_epoch` must have
    /// been captured before the lookup's bucket READ and `slot_word` is the
    /// atomic word the lookup observed; `hot` is the FC-cache hotness
    /// verdict consumed by the frequency-threshold admission policy.
    #[allow(clippy::too_many_arguments)]
    fn tier_admit(
        &mut self,
        hash: u64,
        key: &[u8],
        slot_addr: RemoteAddr,
        slot_word: u64,
        board_epoch: u64,
        hot: bool,
        value: &[u8],
    ) {
        let now = self.dm.now_ns();
        let Some(tier) = self.tier.as_mut() else {
            return;
        };
        let policy = tier.choose_policy(&mut self.rng);
        if policy == POLICY_FREQ && !hot {
            return;
        }
        tier.admit(
            hash,
            key,
            value,
            slot_addr,
            slot_word,
            now,
            board_epoch,
            policy,
        );
    }

    fn record_access(
        &mut self,
        slot_addr: RemoteAddr,
        slot: &Slot,
        ext: Option<&[u64; EXT_WORDS]>,
        kind: AccessKind,
    ) {
        let now = self.dm.now_ns();
        // Stateless information: a single asynchronous WRITE (mirrored into
        // the destination copy while the slot's stripe is mid-migration).
        self.write_slot_meta(
            SampleFriendlyHashTable::last_ts_addr(slot_addr),
            &now.to_le_bytes(),
        );
        if !self.config.enable_sample_friendly_table {
            // Ablation: without the co-designed table the stateless fields are
            // scattered and need an additional write on the data path.
            let _ = self
                .dm
                .try_write_async(self.scratch.add(8), &now.to_le_bytes());
        }
        // Stateful information: the frequency counter, combined client-side.
        // On the Get path with the FC cache enabled the flush decision is
        // hoisted before the object READ (the FAA shares its doorbell
        // batch), so such hits arrive here with the counter already
        // handled.
        if kind != AccessKind::Hit || !self.config.enable_fc_cache {
            let freq_addr = SampleFriendlyHashTable::freq_addr(slot_addr);
            if self.config.enable_fc_cache {
                for (addr, delta) in self.fc.record(freq_addr) {
                    let _ = with_retry(&self.dm, |dm| dm.try_faa(addr, delta));
                    self.stats.record_fc_flush();
                }
            } else {
                let _ = with_retry(&self.dm, |dm| dm.try_faa(freq_addr, 1));
                self.stats.record_fc_flush();
            }
        }
        // Extension metadata for advanced algorithms (§4.4).
        if self.use_extension {
            let mut metadata = slot.metadata();
            metadata.record_access(&AccessContext::at(now));
            if let Some(ext) = ext {
                metadata.ext = *ext;
            }
            let ctx = AccessContext::at(now).with_kind(kind);
            for expert in self.experts.iter() {
                expert.update(&mut metadata, &ctx);
            }
            let mut buf = [0u8; EXT_WORDS * 8];
            for (i, w) in metadata.ext.iter().enumerate() {
                buf[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
            }
            let ext_addr = slot.atomic.object_addr().add(object::ext_offset());
            let _ = self.dm.try_write_async(ext_addr, &buf);
        }
    }

    // ------------------------------------------------------------------
    // Regrets and adaptive weights
    // ------------------------------------------------------------------

    /// Refreshes the client's estimate of shard `shard`'s history counter
    /// when it is unknown or stale, and returns the estimate.
    fn refresh_counter_estimate(&mut self, shard: u64) -> u64 {
        let idx = shard as usize;
        if !self.counters_known[idx]
            || self.miss_count - self.last_refresh_miss_count[idx]
                >= self.config.history_counter_refresh
        {
            // A faulted refresh keeps the stale estimate: adaptation lags a
            // little, nothing breaks (the next refresh interval retries).
            if let Ok(counter) = self.history.try_read_counter(&self.dm, shard) {
                self.counter_estimates[idx] = counter;
                self.counters_known[idx] = true;
                self.last_refresh_miss_count[idx] = self.miss_count;
            }
        }
        self.counter_estimates[idx]
    }

    fn check_regret(&mut self, slots: &[(RemoteAddr, Slot)], hash: u64) {
        self.miss_count += 1;
        let entry = slots
            .iter()
            .find(|(_, s)| s.atomic.is_history() && s.hash == hash);
        let Some((_, entry)) = entry else {
            return;
        };
        let id = entry.atomic.history_id();
        let estimate = self.refresh_counter_estimate(self.history.shard_of_id(id));
        if !self.history.is_valid(estimate, id) {
            return;
        }
        // Global-scale position: the LeCaR discount is calibrated against
        // the full history length, not a shard's slice of it.
        let position = self.history.global_position(estimate, id);
        self.stats.record_regret();
        let sync_needed = self.weights.apply_regret(entry.expert_bitmap(), position);
        if sync_needed || !self.config.enable_lazy_weight_update {
            self.sync_weights();
        }
    }

    fn sync_weights(&mut self) {
        let penalties = self.weights.take_pending();
        let request = weight_wire::encode_penalties(&penalties);
        match self.dm.rpc(0, WEIGHT_SERVICE, &request) {
            Ok(response) => {
                if let Ok(weights) = weight_wire::decode_weights(&response) {
                    self.weights.set_weights(&weights);
                }
                self.stats.record_weight_sync();
            }
            Err(_) => {
                // The controller being unreachable only delays adaptation.
            }
        }
    }

    // ------------------------------------------------------------------
    // Set path
    // ------------------------------------------------------------------

    fn set_inner(&mut self, key: &[u8], value: &[u8]) -> CacheResult<()> {
        let hash = fnv1a64(key);
        let fp = fingerprint(hash);
        // The writer's own tier copy is stale the moment the Set is issued;
        // other clients' copies are invalidated by the board bump once the
        // publish CAS lands (end of this function).
        if let Some(tier) = self.tier.as_mut() {
            tier.remove(hash);
        }
        // Encode into the reusable per-client buffer, temporarily moved out
        // so the borrow checker can see it is disjoint from `self`.
        let mut encoded = std::mem::take(&mut self.encode_buf);
        object::encode_into(
            key,
            value,
            self.use_extension,
            &[0; EXT_WORDS],
            &mut encoded,
        );
        let size_class = encoded.len() / 64;
        if size_class > 254 {
            self.encode_buf = encoded;
            return Err(crate::error::CacheError::ObjectTooLarge {
                bytes: object::encoded_len(key.len(), value.len(), self.use_extension),
                max: 254 * 64,
            });
        }
        // Stripe-local placement: route the value through the topology with
        // the primary bucket's stripe as the hint.  Before any resize this
        // is exactly the node that owns the bucket (slot and object share a
        // memory node and its NIC); after an online add/drain the topology
        // remaps the hint, so new objects rebalance onto the changed active
        // set while resident data stays put.
        let stripe = self.table.stripe_of_bucket(self.table.primary_bucket(hash));
        let mut preferred = self.topology.alloc_node_for(stripe);
        if self.dm.node_failed(preferred) {
            // Fail-stop degradation: the stripe's home node is dead, so a
            // striped pool places new objects on any surviving active node
            // instead of refusing writes (the bucket verbs still target the
            // dead node and degrade those keys to misses, but every key
            // whose buckets live elsewhere keeps full service).
            preferred = self
                .topology
                .active()
                .iter()
                .copied()
                .find(|&n| !self.dm.node_failed(n))
                .unwrap_or(preferred);
        }
        self.alloc_abandoned = false;
        let mut obj_addr = self.alloc_with_eviction(preferred, encoded.len());
        let mut new_atomic = match AtomicField::try_for_object(fp, size_class as u8, obj_addr) {
            Ok(atomic) => atomic,
            Err(e) => {
                // The 48-bit slot pointer cannot name this address; release
                // the memory and surface the typed error.
                self.free_object(obj_addr, encoded.len());
                self.encode_buf = encoded;
                return Err(e);
            }
        };
        self.stats.record_set();
        self.journal_arm(obj_addr, encoded.len());
        if self.crash_fired(CrashPoint::AfterAlloc) {
            // Crash-consistency test hook: die with the allocation made and
            // the journal armed, before any object byte is written.
            self.encode_buf = encoded;
            return Ok(());
        }

        let mut stored = false;
        let mut object_written = false;
        for _ in 0..MAX_RETRIES {
            // Each attempt recomputes its addresses through the directory,
            // so the staleness token must move with it — keeping the
            // op-start token would judge every CAS after a mid-op cutover
            // stale even against the stripe's fresh live home.
            self.mig_token = self.table.directory().version();
            if self.alloc_abandoned {
                // The previous attempt's insert was displaced by an evictor
                // mid-cutover, which freed the object (see
                // `resolve_stale_cas`): re-allocate and rewrite the bytes
                // before retrying.
                self.alloc_abandoned = false;
                obj_addr = self.alloc_with_eviction(preferred, encoded.len());
                new_atomic = match AtomicField::try_for_object(fp, size_class as u8, obj_addr) {
                    Ok(atomic) => atomic,
                    Err(e) => {
                        self.free_object(obj_addr, encoded.len());
                        self.journal_clear();
                        self.encode_buf = encoded;
                        return Err(e);
                    }
                };
                self.journal_arm(obj_addr, encoded.len());
                if with_retry(&self.dm, |dm| dm.try_write(obj_addr, &encoded)).is_err() {
                    // The replacement bytes cannot be written (persistent
                    // faults or a dead node): drop the update rather than
                    // publish a pointer to garbage.  The failed search
                    // below already invalidated any older value's slot or
                    // will keep failing consistently.
                    self.free_object(obj_addr, encoded.len());
                    self.journal_clear();
                    self.encode_buf = encoded;
                    return Ok(());
                }
                object_written = true;
            }
            // The object WRITE is independent of the bucket READs, so the
            // first successful lookup round carries it in the same doorbell
            // batch; once it has landed, retries only re-read the buckets.
            let write = if object_written {
                None
            } else {
                Some((obj_addr, &encoded[..]))
            };
            let Ok((slots, existing)) = self.search(hash, fp, write) else {
                // This attempt's lookup could not complete; the piggybacked
                // WRITE (if any) may not have landed, so the next attempt
                // re-carries it (re-posting the unpublished bytes is
                // idempotent).
                continue;
            };
            if write.is_some() {
                object_written = true;
                if self.crash_fired(CrashPoint::AfterObjectWrite) {
                    // Crash-consistency test hook: die with the object bytes
                    // fully written but nothing referencing them yet.
                    self.encode_buf = encoded;
                    return Ok(());
                }
            }
            // Each publish attempt — whichever of the three CAS shapes it
            // takes — is one `Publish` span (detail = 1 on the attempt that
            // installed the pointer).
            let publish_start = self.dm.now_ns();
            if let Some((slot_addr, slot)) = existing {
                let won = self.replace_existing(slot_addr, &slot, new_atomic);
                self.dm
                    .record_span(Phase::Publish, publish_start, self.dm.now_ns(), won as u32);
                if won {
                    stored = true;
                    break;
                }
                continue;
            }
            if let Some((slot_addr, observed)) = self.choose_insert_slot(&slots) {
                let won = self.install_new(slot_addr, &observed, new_atomic, hash);
                self.dm
                    .record_span(Phase::Publish, publish_start, self.dm.now_ns(), won as u32);
                if won {
                    stored = true;
                    break;
                }
                continue;
            }
            let won = self.bucket_evict_and_insert(&slots, new_atomic, hash);
            self.dm
                .record_span(Phase::Publish, publish_start, self.dm.now_ns(), won as u32);
            if won {
                stored = true;
                break;
            }
        }
        if self.crashed {
            // An armed crash point fired inside a publish: the client is
            // dead mid-protocol.  Skip every cleanup step — no journal
            // clear, no frees, no invalidation — leaving exactly the
            // debris `recover_crashed_client` must be able to fix.  The
            // coherence bump still happens: the publish CAS may have landed
            // before the crash, and a stale tier copy surviving a recovered
            // Set would be exactly the resurrection bug the chaos tests
            // hunt for.
            self.board.bump(hash);
            self.encode_buf = encoded;
            return Ok(());
        }
        if !stored {
            // Persistent CAS interference: the request is dropped.  For a
            // fresh insert that is a declined admission, but when an older
            // value of the key is still installed, dropping the update
            // silently would leave a *completed-then-unobservable* write —
            // readers would keep hitting the stale version forever.
            // Invalidate the entry instead: the key misses until re-filled,
            // indistinguishable from an eviction.
            for _ in 0..MAX_RETRIES {
                self.mig_token = self.table.directory().version();
                let Ok((_, existing)) = self.search(hash, fp, None) else {
                    // The invalidation sweep cannot see the table; give up
                    // (a reachable stale value then survives only if the
                    // same faults also hide it from every reader).
                    break;
                };
                let Some((slot_addr, slot)) = existing else {
                    break;
                };
                if slot.atomic.encode() == new_atomic.encode() {
                    // A judged-failed CAS actually carried our value after
                    // all: the set is installed, nothing to invalidate.
                    stored = true;
                    break;
                }
                if self.slot_cas(slot_addr, slot.atomic.encode(), 0) {
                    self.free_object(
                        slot.atomic.object_addr(),
                        slot.atomic.object_bytes() as usize,
                    );
                    break;
                }
            }
        }
        if !stored {
            if self.alloc_abandoned {
                // The final attempt's insert was displaced by an evictor,
                // which already freed the object — freeing here would
                // double-free a block another Set may have recycled.
                self.alloc_abandoned = false;
            } else {
                // Release the dropped request's object so nothing leaks.
                self.free_object(obj_addr, encoded.len());
            }
        }
        // One bump covers every mutation shape this Set may have performed
        // on its own key's slot — replace, fresh install, bucket
        // evict-and-insert, or the failed-update invalidation sweep — and
        // is sequenced after the last CAS but before the operation returns,
        // so a reader starting after this Set completes always sees it.  A
        // Set that mutated nothing bumps anyway; the only cost is a
        // spurious refetch by tier holders of this key.
        self.board.bump(hash);
        self.journal_clear();
        self.encode_buf = encoded;
        Ok(())
    }

    fn replace_existing(
        &mut self,
        slot_addr: RemoteAddr,
        slot: &Slot,
        new_atomic: AtomicField,
    ) -> bool {
        let expected = slot.atomic.encode();
        if expected == new_atomic.encode() {
            // Already installed — a migration cutover made a previous
            // attempt look failed and the retry found its own object.
            // Freeing "the old object" here would free the new one.
            return true;
        }
        // Journal the displaced allocation *before* the publish CAS: once
        // the CAS lands, a crash before the free below would otherwise
        // leak the old blocks with nothing recording them.
        self.journal_set_old(Some((
            slot.atomic.object_addr(),
            slot.atomic.object_bytes() as usize,
        )));
        if !self.slot_cas(slot_addr, expected, new_atomic.encode()) {
            return false;
        }
        if self.crash_fired(CrashPoint::AfterPublish) {
            // Crash-consistency test hook: die with the new value live and
            // the displaced old allocation never freed.
            return true;
        }
        self.record_access(slot_addr, slot, None, AccessKind::Update);
        self.free_object(
            slot.atomic.object_addr(),
            slot.atomic.object_bytes() as usize,
        );
        true
    }

    fn install_new(
        &mut self,
        slot_addr: RemoteAddr,
        observed: &Slot,
        new_atomic: AtomicField,
        hash: u64,
    ) -> bool {
        let expected = observed.atomic.encode();
        // No allocation is displaced by an insert into an empty (or
        // history) slot; zero the journal's old half so a stale triple
        // from an earlier failed replace attempt cannot be replayed.
        self.journal_set_old(None);
        if !self.slot_cas(slot_addr, expected, new_atomic.encode()) {
            return false;
        }
        self.write_fresh_metadata(slot_addr, hash);
        true
    }

    fn write_fresh_metadata(&mut self, slot_addr: RemoteAddr, hash: u64) {
        let now = self.dm.now_ns();
        let mut buf = [0u8; 32];
        buf[0..8].copy_from_slice(&hash.to_le_bytes());
        buf[8..16].copy_from_slice(&now.to_le_bytes());
        buf[16..24].copy_from_slice(&now.to_le_bytes());
        buf[24..32].copy_from_slice(&1u64.to_le_bytes());
        self.write_slot_meta(SampleFriendlyHashTable::hash_addr(slot_addr), &buf);
    }

    /// Picks the slot an insert should claim, preferring empty slots, then
    /// expired history entries, then the oldest valid history entry.
    fn choose_insert_slot(&mut self, slots: &[(RemoteAddr, Slot)]) -> Option<(RemoteAddr, Slot)> {
        if let Some(found) = slots.iter().find(|(_, s)| s.atomic.is_empty()) {
            return Some(*found);
        }
        if !slots.iter().any(|(_, s)| s.atomic.is_history()) {
            return None;
        }
        // Refresh the estimate of every history shard present in the bucket
        // before comparing validity/positions against them.
        for (_, s) in slots {
            if s.atomic.is_history() {
                self.refresh_counter_estimate(self.history.shard_of_id(s.atomic.history_id()));
            }
        }
        let estimate = |id: u64| self.counter_estimates[self.history.shard_of_id(id) as usize];
        if let Some(expired) = slots.iter().find(|(_, s)| {
            s.atomic.is_history()
                && !self
                    .history
                    .is_valid(estimate(s.atomic.history_id()), s.atomic.history_id())
        }) {
            return Some(*expired);
        }
        slots
            .iter()
            .filter(|(_, s)| s.atomic.is_history())
            .max_by_key(|(_, s)| {
                self.history
                    .position(estimate(s.atomic.history_id()), s.atomic.history_id())
            })
            .copied()
    }

    fn bucket_evict_and_insert(
        &mut self,
        slots: &[(RemoteAddr, Slot)],
        new_atomic: AtomicField,
        hash: u64,
    ) -> bool {
        let mut candidates = Candidates::new();
        candidates.extend(slots.iter().filter(|(_, s)| s.atomic.is_object()).copied());
        if candidates.is_empty() {
            return false;
        }
        // The bucket slots were decoded (and charged) by the lookup; only
        // the candidate scoring is added here.
        self.charge_score(candidates.len());
        let (victim_idx, bitmap, chosen) = self.select_victim(&candidates);
        let (victim_addr, victim) = candidates[victim_idx];
        let expected = victim.atomic.encode();
        // As in `replace_existing`: record the victim's allocation before
        // it becomes unreachable, so a crash between the CAS and the free
        // stays recoverable.
        self.journal_set_old(Some((
            victim.atomic.object_addr(),
            victim.atomic.object_bytes() as usize,
        )));
        if !self.slot_cas(victim_addr, expected, new_atomic.encode()) {
            return false;
        }
        // The *victim key*'s slot word is gone: invalidate its local-tier
        // copies right away — before even the crash hook, since the CAS
        // already landed.  (The inserted key's own bump happens once at the
        // end of `set_inner`.)
        self.board.bump(victim.hash);
        if self.crash_fired(CrashPoint::AfterPublish) {
            return true;
        }
        self.notify_eviction(&candidates, victim_idx, bitmap);
        self.free_object(
            victim.atomic.object_addr(),
            victim.atomic.object_bytes() as usize,
        );
        self.write_fresh_metadata(victim_addr, hash);
        self.stats.record_bucket_eviction();
        self.stats.record_eviction(chosen);
        true
    }

    // ------------------------------------------------------------------
    // Eviction
    // ------------------------------------------------------------------

    fn alloc_with_eviction(&mut self, preferred: u16, size: usize) -> RemoteAddr {
        let min_blocks = (size as u64).div_ceil(64).min(u8::MAX as u64) as u8;
        self.pending_alloc_blocks = min_blocks as u64;
        let mut evictions_won = 0u64;
        for attempt in 0..MAX_EVICTION_ATTEMPTS {
            // Under memory pressure a segment RPC is doomed: serve from the
            // local free lists (stripe-local node first, then any active
            // node), evicting to refill them.  Every 8th attempt still
            // probes the memory nodes in case capacity reappeared
            // (e.g. after another client released segments).
            if self.mem_pressure && attempt % 8 != 7 {
                if let Some(addr) = self.alloc.alloc_local_on(preferred, size) {
                    self.note_object_alloc(addr, size);
                    return addr;
                }
                if self.evict_once_for(min_blocks) {
                    evictions_won += 1;
                    // Winning evictions is not the same as making progress:
                    // scattered small victims may never coalesce into this
                    // ask client-side, while node-side the fragments from
                    // every client merge.  Periodically try the exact-size
                    // ask even though eviction still succeeds.
                    if attempt % 8 == 3 && attempt > 8 {
                        if let Some(addr) = self.backstop_alloc(preferred, size) {
                            return addr;
                        }
                    }
                } else if let Some(addr) = self.backstop_alloc(preferred, size) {
                    return addr;
                } else {
                    self.mem_pressure = false;
                }
                continue;
            }
            match self.alloc.alloc_on(&self.dm, preferred, size) {
                Ok(addr) => {
                    self.note_object_alloc(addr, size);
                    return addr;
                }
                Err(DmError::OutOfMemory { .. }) => {
                    self.mem_pressure = true;
                    if self.evict_once_for(min_blocks) {
                        evictions_won += 1;
                    } else if let Some(addr) = self.backstop_alloc(preferred, size) {
                        return addr;
                    }
                }
                Err(e) => panic!("allocation failed: {e}"),
            }
        }
        panic!(
            "unable to free memory for a {size}-byte object after {MAX_EVICTION_ATTEMPTS} \
             attempts ({evictions_won} evictions won; local free blocks {}, live blocks {}, \
             segments fetched {})",
            self.alloc.free_blocks(),
            self.alloc.live_blocks(),
            self.alloc.segments_fetched(),
        );
    }

    /// Last-resort allocation once eviction has made no progress (losing
    /// every victim race, or an empty sample): ask the nodes for exactly
    /// the needed bytes — ranges released by *other* clients may hold this
    /// object even though no whole segment is free.  If that fails too,
    /// dump this client's own parked ranges back to the node — fragments
    /// from many clients coalesce there into spans no single client could
    /// assemble — and ask once more.
    fn backstop_alloc(&mut self, preferred: u16, size: usize) -> Option<RemoteAddr> {
        let addr = self
            .alloc
            .alloc_exact_on(&self.dm, preferred, size)
            .or_else(|| {
                if self.alloc.release_excess(&self.dm, 0) == 0 {
                    return None;
                }
                self.alloc.alloc_exact_on(&self.dm, preferred, size)
            })?;
        self.note_object_alloc(addr, size);
        Some(addr)
    }

    /// Reads one eviction sample into the per-client sample buffer and
    /// appends the live-object candidates, charging the decode and
    /// candidate-scoring CPU work as it goes.
    ///
    /// The sample-friendly table needs a single `RDMA_READ` of K consecutive
    /// slots — or, when the sampled span crosses a stripe boundary of the
    /// striped table, one READ per memory node touched, issued behind a
    /// single doorbell.  The sampled *global* slot indices are independent
    /// of the striping, so striped and single-node caches examine identical
    /// candidates.  The scattered-metadata ablation needs K independent
    /// slot READs; on the pipelined path they are posted signalled and each
    /// candidate is decoded and scored **as its completion drains**, so the
    /// scoring of early slots overlaps the remaining flights.  With
    /// batching disabled the verbs go out sequentially — exactly the seed's
    /// behaviour.
    fn read_eviction_sample(&mut self, candidates: &mut Candidates) {
        let sample_size = self.config.sample_size;
        if self.config.enable_sample_friendly_table {
            let (start, count) = self.table.sample_span(&mut self.rng, sample_size);
            let mut sample: InlineVec<(RemoteAddr, Slot), { DittoConfig::MAX_SAMPLE_SIZE }> =
                InlineVec::new();
            if self.use_async() {
                self.read_span_pipelined(start, count, &mut sample);
            } else {
                // A faulted sample read yields no candidates this round;
                // the caller's retry loop re-samples a different span.
                if self
                    .table
                    .try_read_span_into(
                        &self.dm,
                        start,
                        count,
                        &mut self.sample_buf,
                        self.config.enable_doorbell_batching,
                        &mut sample,
                    )
                    .is_ok()
                {
                    self.charge_decode(count);
                }
            }
            let mut gathered = 0;
            for &(slot_addr, slot) in sample.iter() {
                if slot.atomic.is_object() && candidates.push_saturating((slot_addr, slot)) {
                    gathered += 1;
                }
            }
            self.charge_score(gathered);
        } else {
            // Ablation: metadata scattered with the objects requires one READ
            // per sampled candidate — all independent, hence one doorbell.
            let mut addrs: InlineVec<RemoteAddr, { DittoConfig::MAX_SAMPLE_SIZE }> =
                InlineVec::new();
            for _ in 0..sample_size {
                let idx = self.rng.gen_range(0..self.table.num_slots());
                addrs.push(self.table.global_slot_addr(idx));
            }
            if self.use_async() {
                {
                    let mut wq = self.dm.work_queue();
                    let buf = &mut self.sample_buf[..sample_size * SLOT_SIZE];
                    for (chunk, &addr) in buf.chunks_mut(SLOT_SIZE).zip(addrs.iter()) {
                        wq.post_read(addr, chunk, true);
                    }
                    wq.ring();
                }
                // Equal-size READs complete in posting order (per-node
                // in-order queue pairs), so completion i is slot i; each
                // candidate is decoded and scored while later slot READs
                // are still in flight.
                for (i, &addr) in addrs.iter().enumerate() {
                    let completion = self.dm.poll_cq().expect("sample slot completion");
                    self.charge_decode(1);
                    // A faulted slot READ drops that one candidate; the
                    // rest of the sample is still usable.
                    if completion.status.check().is_err() {
                        continue;
                    }
                    let slot =
                        Slot::from_bytes(&self.sample_buf[i * SLOT_SIZE..(i + 1) * SLOT_SIZE]);
                    if slot.atomic.is_object() && candidates.push_saturating((addr, slot)) {
                        self.charge_score(1);
                    }
                }
            } else {
                let buf = &mut self.sample_buf[..sample_size * SLOT_SIZE];
                let mut ok = true;
                let mut batch = self.dm.batch();
                for (chunk, &addr) in buf.chunks_mut(SLOT_SIZE).zip(addrs.iter()) {
                    if batch.len() == MAX_BATCH {
                        // An oversized sample flushes into an extra doorbell
                        // instead of aborting the client.
                        ok &= std::mem::replace(&mut batch, self.dm.batch())
                            .try_execute_mode(self.config.enable_doorbell_batching)
                            .is_ok();
                    }
                    batch.read_into(addr, chunk).expect("batch has room");
                }
                ok &= batch
                    .try_execute_mode(self.config.enable_doorbell_batching)
                    .is_ok();
                self.charge_decode(sample_size);
                // Without per-READ attribution a faulted batch abandons the
                // whole sample (the caller re-samples).
                if !ok {
                    return;
                }
                let mut gathered = 0;
                for (i, &addr) in addrs.iter().enumerate() {
                    let slot =
                        Slot::from_bytes(&self.sample_buf[i * SLOT_SIZE..(i + 1) * SLOT_SIZE]);
                    if slot.atomic.is_object() && candidates.push_saturating((addr, slot)) {
                        gathered += 1;
                    }
                }
                self.charge_score(gathered);
            }
        }
    }

    /// Pipelined read of the span of `count` consecutive global slots
    /// starting at `start`: one posted READ per physical segment, each
    /// decoded (and charged) as its completion drains, so decoding one
    /// segment overlaps the remaining segments' flights.  A single-segment
    /// span — the common case — degenerates to one plain READ, exactly
    /// like the synchronous path.
    fn read_span_pipelined(
        &mut self,
        start: u64,
        count: usize,
        out: &mut impl Extend<(RemoteAddr, Slot)>,
    ) {
        let mut segments: InlineVec<(RemoteAddr, usize), MAX_BATCH> = InlineVec::new();
        self.table
            .for_span_segments(start, count, |addr, slots| segments.push((addr, slots)));
        if let [(addr, slots)] = segments[..] {
            // Faulted sample READ: no candidates, the caller re-samples.
            if self
                .dm
                .try_read_into(addr, &mut self.sample_buf[..slots * SLOT_SIZE])
                .is_err()
            {
                return;
            }
            SampleFriendlyHashTable::decode_slots(addr, &self.sample_buf[..slots * SLOT_SIZE], out);
            self.charge_decode(slots);
            return;
        }
        // Work-request id and buffer offset of each posted segment.
        let mut posted: InlineVec<(u64, usize), MAX_BATCH> = InlineVec::new();
        {
            let mut wq = self.dm.work_queue();
            let mut rest = &mut self.sample_buf[..count * SLOT_SIZE];
            let mut offset = 0usize;
            for &(addr, slots) in segments.iter() {
                let (chunk, tail) = rest.split_at_mut(slots * SLOT_SIZE);
                posted.push((wq.post_read(addr, chunk, true), offset));
                offset += slots * SLOT_SIZE;
                rest = tail;
            }
            wq.ring();
        }
        // Decode whichever segment completes next — a small segment on an
        // idle node may overtake a bigger one elsewhere — charging its
        // decode cost while the remaining segments are still in flight.
        let mut span_err = false;
        for _ in 0..segments.len() {
            let completion = self.dm.poll_cq().expect("sample segment completion");
            let seg = posted
                .iter()
                .position(|&(wr, _)| wr == completion.wr_id)
                .expect("completion belongs to this span");
            self.charge_decode(segments[seg].1);
            span_err |= completion.status.check().is_err();
        }
        // Segment buffers are only chunk-aligned per posting, so one
        // faulted segment invalidates positional decoding of the span —
        // abandon the whole sample and let the caller re-sample.
        if span_err {
            return;
        }
        // The candidate *order* must not depend on completion timing (ties
        // in eviction priorities break by position), so the decoded slots
        // are appended in canonical segment order — identical to the
        // synchronous path.
        for (&(_, begin), &(addr, slots)) in posted.iter().zip(segments.iter()) {
            SampleFriendlyHashTable::decode_slots(
                addr,
                &self.sample_buf[begin..begin + slots * SLOT_SIZE],
                out,
            );
        }
    }

    /// Performs one sampling eviction.  Returns `true` when an object was
    /// evicted and its memory recycled.
    pub fn evict_once(&mut self) -> bool {
        self.evict_once_for(0)
    }

    /// One sampling eviction driven by a pending allocation of `min_blocks`
    /// blocks: sampled victims big enough to serve the allocation are
    /// preferred when any exist (recycled ranges only coalesce with free
    /// neighbours, so evicting small victims for a large request can churn
    /// indefinitely — the many-clients analogue of slab-class eviction).
    /// Falls back to the plain priority choice when the sample holds no
    /// big-enough victim, so memory still gets freed for other clients.
    fn evict_once_for(&mut self, min_blocks: u8) -> bool {
        let t0 = self.dm.now_ns();
        let won = self.evict_once_for_inner(min_blocks);
        self.dm
            .record_span(Phase::Evict, t0, self.dm.now_ns(), won as u32);
        won
    }

    fn evict_once_for_inner(&mut self, min_blocks: u8) -> bool {
        let mut candidates = Candidates::new();
        for attempt in 0..8 {
            self.read_eviction_sample(&mut candidates);
            if candidates.len() >= 2 || (attempt >= 3 && !candidates.is_empty()) {
                break;
            }
        }
        if candidates.is_empty() {
            return false;
        }
        if min_blocks > 1 {
            let mut fitting = Candidates::new();
            for &(addr, slot) in candidates.iter() {
                if slot.atomic.size_class >= min_blocks {
                    fitting.push((addr, slot));
                }
            }
            if !fitting.is_empty() {
                candidates = fitting;
            }
        }
        // Pressured clients herd: overlapping samples make many clients
        // pick the same globally-best victim, and only one slot CAS wins
        // per round.  Rather than burning the whole sample on one lost
        // race, fall back to the next-best candidate a bounded number of
        // times — the sample is already paid for, and a loser retrying a
        // *different* victim converts contention into progress.
        for _ in 0..3 {
            let (victim_idx, bitmap, chosen) = self.select_victim(&candidates);
            let (victim_addr, victim) = candidates[victim_idx];
            let expected = victim.atomic.encode();

            let won = if self.config.adaptive && self.config.enable_lightweight_history {
                // Home the entry on the victim's hash shard: entries spread
                // over every shard (and every node's counter) uniformly, so
                // the sharded FIFOs jointly keep the configured history
                // length.
                let shard = self.history.shard_for_hash(victim.hash);
                match self.history.try_acquire_id(&self.dm, shard) {
                    Ok((hist_id, new_counter)) => {
                        self.counter_estimates[shard as usize] = new_counter;
                        self.counters_known[shard as usize] = true;
                        let hist_atomic = AtomicField::for_history(victim.atomic.fp, hist_id);
                        if self.slot_cas(victim_addr, expected, hist_atomic.encode()) {
                            self.write_slot_meta(
                                SampleFriendlyHashTable::insert_ts_addr(victim_addr),
                                &bitmap.to_le_bytes(),
                            );
                            self.stats.record_history_insert();
                            true
                        } else {
                            false
                        }
                    }
                    // Counter FAA faulted: evict without a history entry
                    // (one lost ghost hit beats a wedged eviction path).
                    Err(_) => self.slot_cas(victim_addr, expected, 0),
                }
            } else if self.config.adaptive {
                // Ablation: maintain a separate remote FIFO queue and hash
                // index for the history (FAA on the queue tail, WRITE of the
                // entry and CAS into the index), then clear the slot.
                if self.slot_cas(victim_addr, expected, 0) {
                    // Modelled traffic against scratch space — faults cost
                    // the messages but nothing depends on the results.
                    let _ = self.dm.try_faa(self.scratch.add(16), 1);
                    let _ = self.dm.try_write_async(self.scratch.add(24), &[0u8; 16]);
                    let _ = self.dm.try_cas(self.scratch.add(40), 0, 0);
                    self.stats.record_history_insert();
                    true
                } else {
                    false
                }
            } else {
                self.slot_cas(victim_addr, expected, 0)
            };

            if won {
                // The victim's slot word changed (history entry or empty):
                // invalidate local-tier copies of the evicted key.
                self.board.bump(victim.hash);
                self.notify_eviction(&candidates, victim_idx, bitmap);
                self.free_object(
                    victim.atomic.object_addr(),
                    victim.atomic.object_bytes() as usize,
                );
                self.stats.record_eviction(chosen);
                return true;
            }
            // Lost the race for this victim (another client evicted or
            // replaced it) — drop it and re-select among the rest.
            candidates.swap_remove(victim_idx);
            if candidates.is_empty() {
                break;
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Online bucket-range migration (pump + relocation)
    // ------------------------------------------------------------------

    /// Drives the bucket-range migration: takes up to `max_stripes` planned
    /// stripe moves through `Copying → DualRead → Committed`, relocating
    /// each stripe's resident objects to the destination node in the
    /// `DualRead` window, then — once the plan is drained — sweeps objects
    /// that allocator fallback left on inactive nodes.  Safe to call from
    /// any client at any time; `DittoCache::pump_migration` is the
    /// run-to-completion wrapper.
    pub fn pump_migration(&mut self, max_stripes: usize) -> MigrationProgress {
        self.maybe_refresh_topology();
        let engine = Arc::clone(&self.engine);
        engine.maybe_replan();
        let mut progress = MigrationProgress::default();
        let mut budget = max_stripes;
        while budget > 0 {
            let Some(job) = engine.next_job() else { break };
            budget -= 1;
            self.mig_token = self.table.directory().version();
            match engine.begin(&self.dm, &job) {
                Ok(true) => {}
                // A requeued job whose stripe is already in DualRead (a
                // previous pump's commit exhausted the stripe lock) looks
                // "stale" to begin; resume it at the commit below instead
                // of dropping it wedged.
                Ok(false) if engine.directory().state(job.stripe) == MigrationState::DualRead => {}
                Ok(false) => continue, // stale job (superseded plan)
                Err(_) => {
                    // The destination cannot host the stripe yet (or its
                    // lock lease is wedged): put the job back so the plan
                    // stays visibly incomplete, and stop this pump rather
                    // than spinning on it.
                    engine.requeue_job(job);
                    break;
                }
            }
            self.relocate_stripe_objects(job.stripe, Some(job.src), job.dst, &mut progress);
            match engine.commit(&self.dm, &job) {
                Ok(()) => progress.stripes_moved += 1,
                Err(_) => {
                    // Lock lease wedged mid-move: requeue so a later pump
                    // (after recovery reclaims the lease) finishes the
                    // stripe instead of leaving it in DualRead forever.
                    engine.requeue_job(job);
                    break;
                }
            }
            self.maybe_refresh_topology();
        }
        if engine.pending_jobs() == 0 && self.has_inactive_residue() {
            // Allocator fallback may have placed objects on nodes that are
            // now inactive even though their buckets never moved; sweep the
            // whole table so a drained node really reaches zero bytes.
            self.mig_token = self.table.directory().version();
            for stripe in 0..self.table.num_stripes() as u64 {
                let preferred = self.topology.alloc_node_for(stripe);
                self.relocate_stripe_objects(stripe, None, preferred, &mut progress);
            }
        }
        progress.jobs_remaining = engine.pending_jobs() as u64;
        progress
    }

    /// Forensic scan: total object bytes on `mn_id` still referenced by a
    /// live slot anywhere in the table (block-rounded, matching the
    /// resident-bytes gauge).  Comparing this against
    /// [`MemoryPool::resident_object_bytes`] splits a non-zero residual
    /// into *reachable* bytes (a sweep missed them; scan == gauge) versus
    /// *orphaned* bytes (a slot update lost the only reference; scan <
    /// gauge).  Debug/test aid — scans every bucket, not a hot-path call.
    ///
    /// [`MemoryPool::resident_object_bytes`]: ditto_dm::MemoryPool::resident_object_bytes
    pub fn referenced_object_bytes_on(&mut self, mn_id: u16) -> u64 {
        let mut total = 0u64;
        for stripe in 0..self.table.num_stripes() as u64 {
            let first = self.table.first_bucket_of_stripe(stripe);
            for bucket in first..first + self.table.buckets_per_stripe() {
                for (_, slot) in self.table.read_bucket(&self.dm, bucket) {
                    if slot.atomic.is_object() && slot.atomic.object_addr().mn_id == mn_id {
                        total += Self::resident_bytes_for(slot.atomic.object_bytes() as usize);
                    }
                }
            }
        }
        total
    }

    /// Whether any inactive node still holds resident object bytes.
    fn has_inactive_residue(&self) -> bool {
        let stats = self.dm.pool().stats();
        (0..self.dm.pool().num_nodes())
            .any(|mn| !self.topology.is_active(mn) && stats.resident_bytes_on(mn) > 0)
    }

    /// Scans one stripe's buckets and re-places resident objects: those on
    /// `moving_src` (the node the stripe is leaving) and those on inactive
    /// nodes, preferring `preferred` as the new home.
    fn relocate_stripe_objects(
        &mut self,
        stripe: u64,
        moving_src: Option<u16>,
        preferred: u16,
        progress: &mut MigrationProgress,
    ) {
        let first = self.table.first_bucket_of_stripe(stripe);
        let mut bytes = Vec::new();
        for bucket in first..first + self.table.buckets_per_stripe() {
            for (slot_addr, slot) in self.table.read_bucket(&self.dm, bucket) {
                if !slot.atomic.is_object() {
                    continue;
                }
                let node = slot.atomic.object_addr().mn_id;
                if moving_src != Some(node) && self.topology.is_active(node) {
                    continue;
                }
                let len = slot.atomic.object_bytes() as usize;
                if bytes.len() < len {
                    bytes.resize(len, 0);
                }
                // Relocation READs are migration traffic: they take budget
                // from the same token bucket as the stripe bulk copies, so
                // `migration_copy_bytes_per_sec` caps the combined rate.
                self.engine.throttle_copy(&self.dm, len as u64);
                // A faulted relocation READ skips this object for now; it
                // stays where it is and a later pump retries it.
                if self
                    .dm
                    .try_read_into(slot.atomic.object_addr(), &mut bytes[..len])
                    .is_err()
                {
                    continue;
                }
                if self.relocate_object_bytes(slot_addr, &slot, &bytes[..len], preferred) {
                    progress.objects_relocated += 1;
                }
            }
        }
    }

    /// Re-places one object whose encoded bytes are already in `bytes`:
    /// allocates on an active node (evicting under memory pressure), writes
    /// the bytes, swings the slot pointer with the migration-aware CAS and
    /// releases the old blocks.
    fn relocate_object_bytes(
        &mut self,
        slot_addr: RemoteAddr,
        slot: &Slot,
        bytes: &[u8],
        preferred: u16,
    ) -> bool {
        let t0 = self.dm.now_ns();
        let moved = self.relocate_object_bytes_inner(slot_addr, slot, bytes, preferred);
        self.dm
            .record_span(Phase::Relocate, t0, self.dm.now_ns(), moved as u32);
        moved
    }

    fn relocate_object_bytes_inner(
        &mut self,
        slot_addr: RemoteAddr,
        slot: &Slot,
        bytes: &[u8],
        preferred: u16,
    ) -> bool {
        let old_addr = slot.atomic.object_addr();
        let len = bytes.len();
        let Some(new_addr) = self.alloc_for_relocation(preferred, len) else {
            return false;
        };
        if new_addr.mn_id == old_addr.mn_id {
            // Nothing gained (only the old node had room); try again later.
            self.free_object(new_addr, len);
            return false;
        }
        let new_atomic =
            match AtomicField::try_for_object(slot.atomic.fp, slot.atomic.size_class, new_addr) {
                Ok(atomic) => atomic,
                Err(_) => {
                    self.free_object(new_addr, len);
                    return false;
                }
            };
        // The relocation WRITE shares the migration copy token bucket with
        // the engine's stripe copies (the READ was charged by the caller).
        self.engine.throttle_copy(&self.dm, bytes.len() as u64);
        if with_retry(&self.dm, |dm| dm.try_write(new_addr, bytes)).is_err() {
            // Could not land the object copy; back out and leave the
            // original in place for a later pump.
            self.free_object(new_addr, len);
            return false;
        }
        if !self.slot_cas(slot_addr, slot.atomic.encode(), new_atomic.encode()) {
            // The slot changed under us (eviction/update raced); back out.
            self.free_object(new_addr, len);
            return false;
        }
        // No coherence-board bump: the key→value mapping is unchanged, so a
        // tier copy stays byte-correct.  The slot *word* did change, which a
        // later lease revalidation conservatively treats as stale — a
        // refetch, never a wrong value.
        self.free_object(old_addr, len);
        self.dm
            .pool()
            .stats()
            .record_migrated_object(Self::resident_bytes_for(len));
        true
    }

    /// Allocation for a relocated object: active nodes only, evicting to
    /// make room (capacity may genuinely have shrunk after a drain).
    /// Returns `None` when space cannot be found — the object then stays
    /// put until a later pump.
    fn alloc_for_relocation(&mut self, preferred: u16, len: usize) -> Option<RemoteAddr> {
        let min_blocks = (len as u64).div_ceil(64).min(u8::MAX as u64) as u8;
        self.pending_alloc_blocks = min_blocks as u64;
        for _ in 0..64 {
            match self.alloc.alloc_on(&self.dm, preferred, len) {
                Ok(addr) => {
                    self.note_object_alloc(addr, len);
                    return Some(addr);
                }
                Err(DmError::OutOfMemory { .. }) => {
                    if self.evict_once_for(min_blocks) {
                        continue;
                    }
                    // Eviction cannot help (or keeps losing races); fall
                    // back to exact-size asks so relocation still drains
                    // nodes when other clients released the needed room.
                    return self.backstop_alloc(preferred, len);
                }
                Err(_) => return None,
            }
        }
        None
    }

    /// Evaluates every expert over the candidates and picks the victim of the
    /// expert chosen by the (weighted) adaptive policy.
    ///
    /// Returns `(victim index, expert bitmap, chosen expert)`, where the
    /// bitmap marks every expert whose own choice coincides with the victim.
    fn select_victim(&mut self, candidates: &[(RemoteAddr, Slot)]) -> (usize, u64, usize) {
        let now = self.dm.now_ns();
        let mut metadata: InlineVec<Metadata, CANDIDATES_CAP> = InlineVec::new();
        for (_, slot) in candidates {
            metadata.push(self.candidate_metadata(slot));
        }
        let mut picks: InlineVec<usize, MAX_EXPERTS> = InlineVec::new();
        for expert in self.experts.iter() {
            let mut best = 0usize;
            let mut best_priority = f64::INFINITY;
            for (i, m) in metadata.iter().enumerate() {
                let p = expert.priority(m, now);
                if p < best_priority {
                    best_priority = p;
                    best = i;
                }
            }
            picks.push(best);
        }
        let chosen = if self.config.adaptive {
            self.weights.choose_expert(&mut self.rng)
        } else {
            0
        };
        let victim_idx = picks[chosen.min(picks.len() - 1)];
        let mut bitmap = 0u64;
        for (i, pick) in picks.iter().enumerate() {
            if *pick == victim_idx {
                bitmap = expert_bitmap::with_expert(bitmap, i);
            }
        }
        (victim_idx, bitmap, chosen)
    }

    fn candidate_metadata(&self, slot: &Slot) -> Metadata {
        let mut metadata = slot.metadata();
        if self.use_extension {
            // Advanced algorithms keep their extension metadata with the
            // object; fetch the header (§4.4: extra READs on eviction).
            let addr = slot.atomic.object_addr().add(object::ext_offset());
            let mut bytes = [0u8; EXT_WORDS * 8];
            // A faulted extension READ scores the candidate on its slot
            // metadata alone (ext words stay zero) — advisory data only.
            if self.dm.try_read_into(addr, &mut bytes).is_ok() {
                for (i, chunk) in bytes.chunks_exact(8).enumerate().take(EXT_WORDS) {
                    metadata.ext[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte word"));
                }
            }
        }
        metadata
    }

    fn notify_eviction(&self, candidates: &[(RemoteAddr, Slot)], victim_idx: usize, bitmap: u64) {
        let now = self.dm.now_ns();
        let metadata = self.candidate_metadata(&candidates[victim_idx].1);
        for (i, expert) in self.experts.iter().enumerate() {
            if expert_bitmap::contains(bitmap, i) {
                expert.on_evict(expert.priority(&metadata, now));
            }
        }
    }
}

impl ditto_workloads::CacheBackend for DittoClient {
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        DittoClient::get(self, key)
    }

    fn set(&mut self, key: &[u8], value: &[u8]) {
        DittoClient::set(self, key, value)
    }

    fn miss_penalty(&mut self, us: u64) {
        self.dm.sleep_us(us);
    }

    fn backend_name(&self) -> &str {
        if self.config.adaptive {
            "ditto"
        } else {
            "ditto-single"
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::cache::DittoCache;
    use crate::config::DittoConfig;
    use ditto_dm::DmConfig;

    fn small_cache(capacity: u64) -> DittoCache {
        DittoCache::with_dedicated_pool(DittoConfig::with_capacity(capacity), DmConfig::default())
            .unwrap()
    }

    #[test]
    fn get_on_empty_cache_misses() {
        let cache = small_cache(1_000);
        let mut client = cache.client();
        assert_eq!(client.get(b"nope"), None);
        assert_eq!(cache.stats().snapshot().misses, 1);
    }

    #[test]
    fn set_then_get_roundtrip() {
        let cache = small_cache(1_000);
        let mut client = cache.client();
        client.set(b"user1", b"value-1");
        assert_eq!(client.get(b"user1").as_deref(), Some(&b"value-1"[..]));
        let snap = cache.stats().snapshot();
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.sets, 1);
    }

    #[test]
    fn get_into_reuses_the_caller_buffer() {
        let cache = small_cache(1_000);
        let mut client = cache.client();
        client.set(b"a", b"first-value");
        client.set(b"b", b"second");
        let mut buf = Vec::new();
        assert!(client.get_into(b"a", &mut buf));
        assert_eq!(buf, b"first-value");
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        assert!(client.get_into(b"b", &mut buf));
        assert_eq!(buf, b"second");
        assert_eq!(buf.capacity(), cap, "smaller value must reuse the buffer");
        assert_eq!(buf.as_ptr(), ptr);
        assert!(!client.get_into(b"missing", &mut buf));
    }

    #[test]
    fn update_replaces_value() {
        let cache = small_cache(1_000);
        let mut client = cache.client();
        client.set(b"k", b"old");
        client.set(b"k", b"newer-value");
        assert_eq!(client.get(b"k").as_deref(), Some(&b"newer-value"[..]));
    }

    #[test]
    fn values_are_isolated_per_key() {
        let cache = small_cache(1_000);
        let mut client = cache.client();
        for i in 0..100u64 {
            client.set(format!("key{i}").as_bytes(), format!("value{i}").as_bytes());
        }
        for i in 0..100u64 {
            assert_eq!(
                client.get(format!("key{i}").as_bytes()),
                Some(format!("value{i}").into_bytes()),
                "key{i}"
            );
        }
    }

    #[test]
    fn other_clients_see_written_objects() {
        let cache = small_cache(1_000);
        let mut writer = cache.client();
        let mut reader = cache.client();
        writer.set(b"shared", b"payload");
        assert_eq!(reader.get(b"shared").as_deref(), Some(&b"payload"[..]));
    }

    #[test]
    fn eviction_keeps_cache_bounded_and_serving() {
        let cache = small_cache(300);
        let mut client = cache.client();
        for i in 0..2_000u64 {
            client.set(format!("key{i}").as_bytes(), &[1u8; 200]);
        }
        let snap = cache.stats().snapshot();
        assert!(
            snap.evictions + snap.bucket_evictions > 1_000,
            "evictions: {snap:?}"
        );
        // Recently inserted keys are still present.
        let mut recent_hits = 0;
        for i in 1_990..2_000u64 {
            if client.get(format!("key{i}").as_bytes()).is_some() {
                recent_hits += 1;
            }
        }
        assert!(
            recent_hits >= 5,
            "only {recent_hits}/10 recent keys survive"
        );
    }

    #[test]
    fn history_entries_and_regrets_are_collected() {
        let cache = small_cache(200);
        let mut client = cache.client();
        // Fill far beyond capacity so evictions populate the history.
        for i in 0..1_500u64 {
            client.set(format!("key{i}").as_bytes(), &[0u8; 200]);
        }
        // Touch evicted keys again: misses that hit the history are regrets.
        for i in 0..400u64 {
            let _ = client.get(format!("key{i}").as_bytes());
        }
        let snap = cache.stats().snapshot();
        assert!(snap.history_inserts > 0);
        assert!(snap.regrets > 0, "expected regrets, got {snap:?}");
    }

    #[test]
    fn weights_adapt_after_many_regrets() {
        let cache = small_cache(200);
        let mut client = cache.client();
        for i in 0..1_500u64 {
            client.set(format!("key{i}").as_bytes(), &[0u8; 200]);
        }
        for round in 0..5 {
            for i in 0..400u64 {
                let _ = client.get(format!("key{}", round * 400 + i).as_bytes());
            }
        }
        client.flush();
        let weights = cache.global_weights();
        assert_eq!(weights.len(), 2);
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(cache.stats().snapshot().weight_syncs > 0);
    }

    #[test]
    fn non_adaptive_single_algorithm_works() {
        let config = DittoConfig::single_algorithm(300, "lfu");
        let cache = DittoCache::with_dedicated_pool(config, DmConfig::default()).unwrap();
        let mut client = cache.client();
        for i in 0..1_000u64 {
            client.set(format!("key{i}").as_bytes(), &[0u8; 200]);
        }
        let snap = cache.stats().snapshot();
        assert!(snap.evictions + snap.bucket_evictions > 0);
        assert_eq!(snap.history_inserts, 0, "no history without adaptivity");
    }

    #[test]
    fn extension_algorithms_roundtrip() {
        let config = DittoConfig::with_capacity(300).with_experts(vec!["gdsf", "lruk"]);
        let cache = DittoCache::with_dedicated_pool(config, DmConfig::default()).unwrap();
        let mut client = cache.client();
        for i in 0..600u64 {
            client.set(format!("key{i}").as_bytes(), &[0u8; 200]);
        }
        for i in 500..600u64 {
            let _ = client.get(format!("key{i}").as_bytes());
        }
        assert!(cache.stats().snapshot().hits > 0);
    }

    #[test]
    fn get_reads_both_buckets_plus_object() {
        let cache = small_cache(1_000);
        let mut client = cache.client();
        client.set(b"probe", b"x");
        cache.pool().reset_stats();
        let _ = client.get(b"probe");
        let reads = cache.pool().stats().node_snapshots()[0].reads;
        assert_eq!(reads, 3, "expected 2 batched bucket READs + 1 object READ");
        // The two bucket READs were issued behind a single doorbell.
        assert_eq!(cache.pool().stats().doorbells(), 1);
        assert_eq!(cache.pool().stats().batched_verbs(), 2);
    }

    #[test]
    fn batched_get_charges_less_latency_than_unbatched() {
        let run = |batched: bool| {
            let config = DittoConfig::with_capacity(1_000).with_doorbell_batching(batched);
            let cache = DittoCache::with_dedicated_pool(config, DmConfig::default()).unwrap();
            let mut client = cache.client();
            client.set(b"probe", b"x");
            let before = client.dm().now_ns();
            let mut buf = Vec::new();
            for _ in 0..100 {
                assert!(client.get_into(b"probe", &mut buf));
            }
            client.dm().now_ns() - before
        };
        let batched = run(true);
        let unbatched = run(false);
        assert!(
            batched * 10 < unbatched * 8,
            "batching should cut hit latency by >20%: {batched} vs {unbatched}"
        );
    }

    #[test]
    fn pipelined_get_charges_strictly_less_than_the_synchronous_batch() {
        // With non-zero post-to-poll CPU work (the default decode cost), a
        // pipelined Get must charge strictly less simulated latency than the
        // synchronous doorbell batch: the primary-bucket decode hides behind
        // the secondary READ's flight, and a hit never pays the secondary
        // decode at all.
        let run = |async_completion: bool| {
            let config = DittoConfig::with_capacity(1_000).with_async_completion(async_completion);
            assert!(
                config.cpu_decode_slot_ns > 0,
                "the default models decode CPU work"
            );
            let cache = DittoCache::with_dedicated_pool(config, DmConfig::default()).unwrap();
            let mut client = cache.client();
            client.set(b"probe", b"x");
            let before = client.dm().now_ns();
            let mut buf = Vec::new();
            for _ in 0..100 {
                assert!(client.get_into(b"probe", &mut buf));
            }
            client.dm().now_ns() - before
        };
        let pipelined = run(true);
        let synchronous = run(false);
        assert!(
            pipelined < synchronous,
            "posted completions must beat the synchronous batch: {pipelined} vs {synchronous}"
        );
    }

    #[test]
    fn pipelined_get_issues_identical_verbs_and_doorbells() {
        let run = |async_completion: bool| {
            let config = DittoConfig::with_capacity(1_000).with_async_completion(async_completion);
            let cache = DittoCache::with_dedicated_pool(config, DmConfig::default()).unwrap();
            let mut client = cache.client();
            client.set(b"probe", b"x");
            cache.pool().reset_stats();
            let _ = client.get(b"probe");
            let snap = cache.pool().stats().node_snapshots()[0];
            (snap.reads, snap.messages, cache.pool().stats().doorbells())
        };
        // Pipelining changes when latency is charged, never what travels.
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn pipelined_hit_with_due_flush_rides_the_faa_unsignalled() {
        let mut config = DittoConfig::with_capacity(1_000);
        config.fc_threshold = 1; // every hit flushes its counter increment
        let cache = DittoCache::with_dedicated_pool(config, DmConfig::default()).unwrap();
        let mut client = cache.client();
        client.set(b"hot", b"x");
        cache.pool().reset_stats();
        assert!(client.get(b"hot").is_some());
        let stats = cache.pool().stats();
        // Search ring (2 READs) + object ring (READ + unsignalled FAA).
        assert_eq!(stats.doorbells(), 2);
        assert!(
            stats.unsignalled_wqes() >= 1,
            "the FAA must ride unsignalled"
        );
        assert_eq!(stats.node_snapshots()[0].faa, 1);
    }

    #[test]
    fn pipelined_set_with_large_objects_waits_for_the_right_completion() {
        // A Set's unsignalled object WRITE is queued ahead of the primary
        // bucket READ on the same node; with objects larger than a bucket
        // the READ's completion lands *after* the secondary's (per-node
        // in-order queue pairs), so the lookup must match wr_ids instead of
        // assuming arrival order.  Exercised on a striped pool with large
        // values; behaviour must stay identical to the synchronous batch.
        let run = |async_completion: bool| {
            let config = DittoConfig::with_capacity(500)
                .with_object_size(1_024)
                .with_async_completion(async_completion);
            let cache =
                DittoCache::with_dedicated_pool(config, DmConfig::default().with_memory_nodes(4))
                    .unwrap();
            let mut client = cache.client();
            let value = vec![7u8; 1_024];
            for i in 0..200u64 {
                client.set(format!("big{i}").as_bytes(), &value);
            }
            for i in 0..200u64 {
                assert_eq!(
                    client.get(format!("big{i}").as_bytes()).as_deref(),
                    Some(&value[..]),
                    "big{i}"
                );
            }
            let messages: u64 = cache
                .pool()
                .stats()
                .node_snapshots()
                .iter()
                .map(|s| s.messages)
                .sum();
            let snap = cache.stats().snapshot();
            (messages, snap.hits, snap.misses)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn migration_copy_rate_is_plumbed_from_the_config() {
        let config = DittoConfig::with_capacity(500).with_migration_copy_rate(123_456);
        let cache = DittoCache::with_dedicated_pool(config, DmConfig::default()).unwrap();
        assert_eq!(cache.migration().copy_rate(), 123_456);
        // Default: unlimited.
        let cache = DittoCache::with_capacity(500).unwrap();
        assert_eq!(cache.migration().copy_rate(), 0);
    }

    #[test]
    fn throttled_migration_pump_stalls_against_foreground_ops() {
        let run = |rate: u64| {
            let config = DittoConfig::with_capacity(2_000).with_migration_copy_rate(rate);
            let cache =
                DittoCache::with_dedicated_pool(config, DmConfig::default().with_memory_nodes(2))
                    .unwrap();
            let mut client = cache.client();
            for i in 0..200u64 {
                client.set(format!("key{i}").as_bytes(), b"resident");
            }
            cache.pool().drain_node(1).unwrap();
            let before = client.dm().now_ns();
            let progress = client.pump_migration(usize::MAX);
            assert!(progress.stripes_moved > 0);
            client.dm().now_ns() - before
        };
        let unthrottled = run(0);
        let throttled = run(2_000_000); // 2 MB/s of copy budget
        assert!(
            throttled > unthrottled * 3,
            "the token bucket must pace the pump: {throttled} vs {unthrottled}"
        );
    }

    #[test]
    fn object_relocation_traffic_shares_the_copy_token_bucket() {
        // Make relocated *objects* the dominant migration traffic (large
        // values), and check the pump stalled for the combined budget: the
        // stripe copies (READ + WRITE per byte, two passes) plus the object
        // relocation READ/WRITEs — not the bucket arrays alone.
        let rate = 2_000_000u64; // 2 MB/s of copy budget
        let config = DittoConfig::with_capacity(2_000).with_migration_copy_rate(rate);
        let cache =
            DittoCache::with_dedicated_pool(config, DmConfig::default().with_memory_nodes(2))
                .unwrap();
        let mut client = cache.client();
        let value = vec![7u8; 1024];
        for i in 0..400u64 {
            client.set(format!("key{i}").as_bytes(), &value);
        }
        cache.pool().drain_node(1).unwrap();
        let before = client.dm().now_ns();
        let progress = client.pump_migration(usize::MAX);
        let elapsed = client.dm().now_ns() - before;
        assert!(progress.stripes_moved > 0);
        assert!(progress.objects_relocated > 50, "{progress:?}");

        let stats = cache.pool().stats();
        let stripe_budget = 2 * stats.migrated_bytes(); // READ + WRITE per byte
        let object_budget = stats.migrated_object_bytes(); // ≤ READ + WRITE charged
        assert!(
            object_budget > stripe_budget / 4,
            "objects must matter here"
        );
        let required_ns =
            (stripe_budget + object_budget).saturating_mul(1_000_000_000) / rate * 9 / 10;
        assert!(
            elapsed >= required_ns,
            "pump stalled {elapsed} ns < {required_ns} ns: relocation \
             READ/WRITEs are not metered through the copy token bucket"
        );
    }

    #[test]
    fn set_batches_object_write_with_bucket_reads() {
        let cache = small_cache(1_000);
        let mut client = cache.client();
        // Warm the allocator so the measured Set performs no segment RPC.
        client.set(b"warm", b"x");
        cache.pool().reset_stats();
        client.set(b"probe", &[1u8; 200]);
        let stats = cache.pool().stats();
        // One doorbell carried the WRITE + both bucket READs.
        assert_eq!(stats.doorbells(), 1);
        assert_eq!(stats.batched_verbs(), 3);
        assert_eq!(stats.largest_batch(), 3);
    }

    #[test]
    fn fc_cache_reduces_faa_traffic() {
        let cache = small_cache(1_000);
        let mut client = cache.client();
        client.set(b"hot", b"x");
        cache.pool().reset_stats();
        for _ in 0..100 {
            let _ = client.get(b"hot");
        }
        let faa = cache.pool().stats().node_snapshots()[0].faa;
        assert!(faa <= 12, "FC cache should batch FAAs, saw {faa}");
    }

    #[test]
    fn striped_cache_serves_roundtrips_across_all_nodes() {
        let config = DittoConfig::with_capacity(1_000);
        let cache =
            DittoCache::with_dedicated_pool(config, DmConfig::default().with_memory_nodes(4))
                .unwrap();
        let mut client = cache.client();
        for i in 0..400u64 {
            client.set(format!("key{i}").as_bytes(), format!("value{i}").as_bytes());
        }
        for i in 0..400u64 {
            assert_eq!(
                client.get(format!("key{i}").as_bytes()),
                Some(format!("value{i}").into_bytes()),
                "key{i}"
            );
        }
        // The hash table and objects are striped: every node serves verbs.
        let snaps = cache.pool().stats().node_snapshots();
        assert_eq!(snaps.len(), 4);
        for (mn, snap) in snaps.iter().enumerate() {
            assert!(
                snap.messages > 100,
                "node {mn} served only {} messages",
                snap.messages
            );
        }
    }

    #[test]
    fn striped_lookup_fans_out_doorbells_across_nodes() {
        let config = DittoConfig::with_capacity(1_000);
        let cache =
            DittoCache::with_dedicated_pool(config, DmConfig::default().with_memory_nodes(4))
                .unwrap();
        let mut client = cache.client();
        for i in 0..64u64 {
            let _ = client.get(&i.to_le_bytes());
        }
        // Some key's primary and secondary buckets live on different nodes,
        // so its lookup batch rang one doorbell per node.
        assert!(
            cache.pool().stats().largest_fanout() >= 2,
            "expected at least one multi-node lookup batch"
        );
        let snaps = cache.pool().stats().node_snapshots();
        assert!(snaps.iter().filter(|s| s.doorbells > 0).count() >= 2);
    }

    #[test]
    fn striped_objects_live_on_their_buckets_node() {
        let config = DittoConfig::with_capacity(1_000);
        let cache =
            DittoCache::with_dedicated_pool(config, DmConfig::default().with_memory_nodes(4))
                .unwrap();
        let mut client = cache.client();
        // With ample memory, every object's value must land on the memory
        // node that owns its primary bucket (stripe-local allocation).
        for i in 0..200u64 {
            let key = format!("key{i}");
            client.set(key.as_bytes(), b"v");
            let hash = crate::hash::fnv1a64(key.as_bytes());
            let table = cache.table();
            let bucket_node = table.node_of_bucket(table.primary_bucket(hash));
            let slots = table.read_bucket(&client.dm, table.primary_bucket(hash));
            let fp = crate::hash::fingerprint(hash);
            if let Some((_, slot)) = slots
                .iter()
                .find(|(_, s)| s.atomic.is_object() && s.atomic.fp == fp && s.hash == hash)
            {
                assert_eq!(
                    slot.atomic.object_addr().mn_id,
                    bucket_node,
                    "object of {key} not stripe-local"
                );
            }
        }
    }

    #[test]
    fn online_add_and_drain_rebalance_allocations() {
        let config = DittoConfig::with_capacity(2_000);
        let cache =
            DittoCache::with_dedicated_pool(config, DmConfig::default().with_memory_nodes(2))
                .unwrap();
        let mut client = cache.client();
        for i in 0..100u64 {
            client.set(format!("warm{i}").as_bytes(), b"resident");
        }
        // Grow the pool online; clients pick the change up via the epoch.
        let new_node = cache.pool().add_node().unwrap();
        assert_eq!(new_node, 2);
        assert_eq!(cache.pool().resize_epoch(), 1);
        for i in 0..100u64 {
            client.set(format!("post-add{i}").as_bytes(), b"fresh");
        }
        // The topology remaps stripe hints over the grown active set, so a
        // share of the new objects lands on the added node.
        let table = cache.table();
        let mut on_new_node = 0;
        for i in 0..100u64 {
            let key = format!("post-add{i}");
            let hash = crate::hash::fnv1a64(key.as_bytes());
            let fp = crate::hash::fingerprint(hash);
            for bucket in [table.primary_bucket(hash), table.secondary_bucket(hash)] {
                let slots = table.read_bucket(&client.dm, bucket);
                if let Some((_, slot)) = slots
                    .iter()
                    .find(|(_, s)| s.atomic.is_object() && s.atomic.fp == fp && s.hash == hash)
                {
                    if slot.atomic.object_addr().mn_id == new_node {
                        on_new_node += 1;
                    }
                }
            }
        }
        assert!(
            on_new_node > 10,
            "only {on_new_node}/100 post-add objects reached the new node"
        );
        // Drain node 1: resident data keeps hitting, new placements avoid it.
        cache.pool().drain_node(1).unwrap();
        assert_eq!(cache.pool().resize_epoch(), 2);
        cache.pool().reset_stats();
        for i in 0..100u64 {
            client.set(format!("post-drain{i}").as_bytes(), b"fresh2");
        }
        for i in 0..100u64 {
            assert_eq!(
                client.get(format!("warm{i}").as_bytes()).as_deref(),
                Some(&b"resident"[..]),
                "resident key warm{i} lost after drain"
            );
        }
        // All 100 post-drain objects were allocated off the drained node.
        let table = cache.table();
        for i in 0..100u64 {
            let key = format!("post-drain{i}");
            let hash = crate::hash::fnv1a64(key.as_bytes());
            let fp = crate::hash::fingerprint(hash);
            for bucket in [table.primary_bucket(hash), table.secondary_bucket(hash)] {
                let slots = table.read_bucket(&client.dm, bucket);
                if let Some((_, slot)) = slots
                    .iter()
                    .find(|(_, s)| s.atomic.is_object() && s.atomic.fp == fp && s.hash == hash)
                {
                    assert_ne!(
                        slot.atomic.object_addr().mn_id,
                        1,
                        "{key} was placed on the drained node"
                    );
                }
            }
        }
    }

    #[test]
    fn pump_migration_moves_stripes_and_drains_nodes_to_empty() {
        let config = DittoConfig::with_capacity(2_000);
        let cache =
            DittoCache::with_dedicated_pool(config, DmConfig::default().with_memory_nodes(2))
                .unwrap();
        let mut client = cache.client();
        for i in 0..400u64 {
            client.set(format!("key{i}").as_bytes(), format!("value{i}").as_bytes());
        }
        assert!(
            cache.pool().resident_object_bytes(1) > 0,
            "node 1 should hold objects"
        );

        // Drain node 1 and pump the migration to completion.
        cache.pool().drain_node(1).unwrap();
        let progress = cache.pump_migration();
        assert!(
            progress.stripes_moved > 0,
            "half the stripes must move: {progress:?}"
        );
        assert!(progress.objects_relocated > 0);
        assert_eq!(progress.jobs_remaining, 0);
        assert!(cache.migration().is_idle());

        // The drained node holds no buckets and no resident object bytes.
        let table = cache.table();
        for bucket in 0..table.num_buckets() {
            assert_ne!(
                table.node_of_bucket(bucket),
                1,
                "bucket {bucket} still on node 1"
            );
        }
        assert_eq!(cache.pool().resident_object_bytes(1), 0);
        assert!(cache.pool().stats().stripe_cutovers() > 0);
        assert!(cache.pool().stats().migrated_bytes() > 0);

        // Every value survived the migration byte-identically, and the
        // emptied node can be decommissioned outright.
        cache.pool().remove_node(1).unwrap();
        cache.pool().reset_stats();
        for i in 0..400u64 {
            assert_eq!(
                client.get(format!("key{i}").as_bytes()),
                Some(format!("value{i}").into_bytes()),
                "key{i} lost in migration"
            );
        }
        // Lookup READ load has left the removed node entirely.
        assert_eq!(cache.pool().stats().node_snapshots()[1].messages, 0);
    }

    #[test]
    fn pump_migration_spreads_existing_buckets_onto_added_nodes() {
        let config = DittoConfig::with_capacity(2_000);
        let cache =
            DittoCache::with_dedicated_pool(config, DmConfig::default().with_memory_nodes(2))
                .unwrap();
        let mut client = cache.client();
        for i in 0..200u64 {
            client.set(format!("key{i}").as_bytes(), b"resident");
        }
        let new_node = cache.pool().add_node().unwrap();
        let progress = cache.pump_migration();
        assert!(progress.stripes_moved > 0);
        // The joiner now owns a fair share of the bucket ranges, so lookup
        // READ load spreads onto it without waiting for churn.
        let table = cache.table();
        let on_new = (0..table.num_buckets())
            .filter(|&b| table.node_of_bucket(b) == new_node)
            .count() as u64;
        assert!(
            on_new * 4 >= table.num_buckets(),
            "only {on_new}/{} buckets moved to the joiner",
            table.num_buckets()
        );
        for i in 0..200u64 {
            assert_eq!(
                client.get(format!("key{i}").as_bytes()).as_deref(),
                Some(&b"resident"[..]),
                "key{i} lost while rebalancing onto the joiner"
            );
        }
    }

    #[test]
    fn cooperative_get_replaces_objects_off_drained_nodes() {
        let config = DittoConfig::with_capacity(2_000);
        let cache =
            DittoCache::with_dedicated_pool(config, DmConfig::default().with_memory_nodes(2))
                .unwrap();
        let mut client = cache.client();
        let table = cache.table();
        // Find a key whose object lands on node 1.
        let key = (0..500u64)
            .map(|i| format!("key{i}"))
            .find(|k| {
                client.set(k.as_bytes(), b"hot-value");
                let hash = crate::hash::fnv1a64(k.as_bytes());
                let fp = crate::hash::fingerprint(hash);
                [table.primary_bucket(hash), table.secondary_bucket(hash)]
                    .iter()
                    .any(|&b| {
                        table.read_bucket(&client.dm, b).iter().any(|(_, s)| {
                            s.atomic.is_object()
                                && s.atomic.fp == fp
                                && s.hash == hash
                                && s.atomic.object_addr().mn_id == 1
                        })
                    })
            })
            .expect("some key must land on node 1");
        cache.pool().drain_node(1).unwrap();
        // One Get relocates the hot object off the drained node (no pump).
        assert_eq!(
            client.get(key.as_bytes()).as_deref(),
            Some(&b"hot-value"[..])
        );
        let hash = crate::hash::fnv1a64(key.as_bytes());
        let fp = crate::hash::fingerprint(hash);
        let moved = [table.primary_bucket(hash), table.secondary_bucket(hash)]
            .iter()
            .any(|&b| {
                table.read_bucket(&client.dm, b).iter().any(|(_, s)| {
                    s.atomic.is_object()
                        && s.atomic.fp == fp
                        && s.hash == hash
                        && s.atomic.object_addr().mn_id != 1
                })
            });
        assert!(moved, "hot object should have been re-placed cooperatively");
        assert!(cache.pool().stats().migrated_objects() > 0);
        // The value still reads back afterwards.
        assert_eq!(
            client.get(key.as_bytes()).as_deref(),
            Some(&b"hot-value"[..])
        );
    }

    #[test]
    fn sets_during_the_dual_read_window_survive_the_cutover() {
        let config = DittoConfig::with_capacity(2_000);
        let cache =
            DittoCache::with_dedicated_pool(config, DmConfig::default().with_memory_nodes(2))
                .unwrap();
        let mut client = cache.client();
        cache.pool().drain_node(1).unwrap();
        let engine = std::sync::Arc::clone(cache.migration());
        engine.maybe_replan();
        let job = engine.next_job().expect("drain must plan moves");
        assert!(engine.begin(client.dm(), &job).unwrap());

        // Write keys while the stripe sits in DualRead: CASes hit the
        // source and mirror into the destination under the stripe lock.
        let table = cache.table();
        let mut in_window = Vec::new();
        for i in 0..300u64 {
            let key = format!("window{i}");
            let hash = crate::hash::fnv1a64(key.as_bytes());
            client.set(key.as_bytes(), key.as_bytes());
            if table.stripe_of_bucket(table.primary_bucket(hash)) == job.stripe {
                in_window.push(key);
            }
        }
        assert!(
            !in_window.is_empty(),
            "some key must map to the moving stripe"
        );
        engine.commit(client.dm(), &job).unwrap();

        // After the cutover the writes are visible at the new home.
        for key in &in_window {
            assert_eq!(
                client.get(key.as_bytes()),
                Some(key.clone().into_bytes()),
                "{key} lost across the DualRead window"
            );
        }
        // Finish the drain cleanly for good measure.
        cache.pump_migration();
        assert_eq!(cache.pool().resident_object_bytes(1), 0);
    }

    #[test]
    fn adaptive_lookup_short_circuits_only_when_message_bound() {
        let run = |message_rate: u64| {
            let mut config = DittoConfig::with_capacity(1_000).with_adaptive_lookup(true);
            config.adaptive_lookup_interval = 8;
            let dm = DmConfig::default().with_message_rate(message_rate);
            let cache = DittoCache::with_dedicated_pool(config, dm).unwrap();
            let mut client = cache.client();
            client.set(b"probe", b"x");
            // Enough lookups to trip at least one bottleneck re-evaluation.
            for _ in 0..32 {
                let _ = client.get(b"probe");
            }
            cache.pool().reset_stats();
            let _ = client.get(b"probe");
            cache.pool().stats().node_snapshots()[0].reads
        };
        // Pathologically message-bound: the hybrid short-circuits, so a
        // primary-bucket hit costs 1 bucket READ + 1 object READ.
        assert_eq!(
            run(1),
            2,
            "message-bound lookups must skip the secondary bucket"
        );
        // Latency-bound (default RNIC budget): the batched both-bucket
        // fetch stays, costing 2 bucket READs + 1 object READ.
        assert_eq!(
            run(40_000_000),
            3,
            "latency-bound lookups keep the batched fetch"
        );
    }

    #[test]
    fn oversized_objects_yield_typed_errors() {
        use crate::error::CacheError;
        let cache = small_cache(1_000);
        let mut client = cache.client();
        let too_big = vec![0u8; 254 * 64 + 1];
        assert!(matches!(
            client.try_set(b"big", &too_big),
            Err(CacheError::ObjectTooLarge { .. })
        ));
        // A rejected set stores nothing and is not counted as a set.
        assert_eq!(cache.stats().snapshot().sets, 0);
        // The cache keeps serving afterwards.
        client.set(b"ok", b"fine");
        assert_eq!(client.get(b"ok").as_deref(), Some(&b"fine"[..]));
        assert_eq!(cache.stats().snapshot().sets, 1);
    }

    #[test]
    fn concurrent_clients_do_not_corrupt_each_other() {
        let cache = small_cache(2_000);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = cache.clone();
                s.spawn(move || {
                    let mut client = cache.client();
                    for i in 0..300u64 {
                        let key = format!("t{t}-key{i}");
                        client.set(key.as_bytes(), key.as_bytes());
                    }
                    for i in 0..300u64 {
                        let key = format!("t{t}-key{i}");
                        if let Some(v) = client.get(key.as_bytes()) {
                            assert_eq!(v, key.as_bytes(), "corrupted value for {key}");
                        }
                    }
                });
            }
        });
        assert!(cache.stats().snapshot().hits > 0);
    }
}
