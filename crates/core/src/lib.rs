//! Ditto: an elastic and adaptive caching system on disaggregated memory.
//!
//! This crate implements the paper's two contributions on top of the
//! [`ditto_dm`] substrate:
//!
//! 1. the **client-centric caching framework** (§4.2) — the sample-friendly
//!    hash table ([`hashtable`]), object layout ([`object`]), client-side
//!    frequency-counter cache ([`fc_cache`]) and the `Get`/`Set`/eviction
//!    data path ([`client`]) that runs arbitrary caching algorithms with only
//!    one-sided remote-memory verbs;
//! 2. **distributed adaptive caching** (§4.3) — the embedded lightweight
//!    eviction history ([`history`]), regret-minimisation expert weights and
//!    the lazy weight-update scheme ([`adaptive`]).
//!
//! [`sim`] additionally provides a process-local simulator that reuses the
//! same algorithm rules and adaptive machinery for fast hit-rate sweeps.
//!
//! # Quick start
//!
//! ```
//! use ditto_core::{DittoCache, DittoConfig};
//! use ditto_dm::DmConfig;
//!
//! let config = DittoConfig::with_capacity(10_000);
//! let cache = DittoCache::with_dedicated_pool(config, DmConfig::default()).unwrap();
//! let mut client = cache.client();
//! client.set(b"user42", b"profile-data");
//! assert_eq!(client.get(b"user42").as_deref(), Some(&b"profile-data"[..]));
//! ```

pub mod adaptive;
pub mod cache;
pub mod client;
pub mod config;
pub mod error;
pub mod fc_cache;
pub mod hash;
pub mod hashtable;
pub mod history;
pub mod inline;
pub mod object;
pub mod sim;
pub mod slot;
pub mod stats;

pub use adaptive::{ExpertWeights, WeightService};
pub use cache::DittoCache;
pub use client::DittoClient;
pub use config::DittoConfig;
pub use error::{CacheError, CacheResult};
pub use fc_cache::FcCache;
pub use hashtable::SampleFriendlyHashTable;
pub use history::EvictionHistory;
pub use sim::{simulate_hit_rate, SimCache, SimConfig, SimStats};
pub use stats::{CacheStats, CacheStatsSnapshot};
