//! Ditto: an elastic and adaptive caching system on disaggregated memory.
//!
//! This crate implements the paper's two contributions on top of the
//! [`ditto_dm`] substrate:
//!
//! 1. the **client-centric caching framework** (§4.2) — the sample-friendly
//!    hash table ([`hashtable`]), object layout ([`object`]), client-side
//!    frequency-counter cache ([`fc_cache`]) and the `Get`/`Set`/eviction
//!    data path ([`client`]) that runs arbitrary caching algorithms with only
//!    one-sided remote-memory verbs;
//! 2. **distributed adaptive caching** (§4.3) — the embedded lightweight
//!    eviction history ([`history`]), regret-minimisation expert weights and
//!    the lazy weight-update scheme ([`adaptive`]).
//!
//! [`sim`] additionally provides a process-local simulator that reuses the
//! same algorithm rules and adaptive machinery for fast hit-rate sweeps,
//! and [`recovery`] documents the crash-consistency model behind
//! [`DittoClient::recover_crashed_client`] — what a client death can leak
//! and how a survivor reclaims it (see also the *Failure model* section of
//! the [`ditto_dm`] crate docs for the fault classes and lease protocol).
//!
//! # The compute-side local tier
//!
//! [`local_tier`] adds an optional per-client cache of decoded hot objects
//! in front of the remote data path — enabled with
//! [`DittoConfig::with_local_tier`].  A `Get` that hits a lease-valid,
//! coherent entry costs **zero network messages**; one whose lease expired
//! costs a single 8-byte slot-word READ.  Coherence is two-layered: an
//! in-process [`local_tier::CoherenceBoard`] of per-key-hash mutation
//! epochs (bumped by every publish/eviction/invalidation CAS before the
//! mutating op returns, making local hits linearizable against concurrent
//! writers) plus leases with slot-word revalidation, which model the
//! message cost a real multi-process deployment pays.  Admission is
//! arbitrated by the same expert framework as victim selection, fed by the
//! FC cache's per-client frequency estimates.  The tier is allocation-free
//! in steady state and every coherence event is counted in the lifetime
//! `local_*` counters of [`CacheStats`] (they survive
//! [`CacheStats::reset`]).
//!
//! # Threading model
//!
//! The cache mirrors the paper's deployment — many compute-node clients,
//! one shared pool:
//!
//! * [`DittoCache`] is `Send + Sync` (and a cheap `Arc`-backed `Clone`):
//!   build it once, hand a clone to every thread.
//! * [`DittoClient`] is **`Send` but not `Sync`** — one per OS thread,
//!   minted on its thread via [`DittoCache::client`].  It owns the
//!   per-thread queue pair ([`ditto_dm::DmClient`]), scratch buffers, RNG
//!   and the client-local frequency-counter cache.
//! * All shared mutable state lives behind remote verbs (slot CAS, FAA) or
//!   atomics, so `search`/`set`/eviction interleavings from different
//!   threads resolve through genuine CAS races: a lost slot CAS backs off,
//!   is counted in [`ditto_dm::PoolStats::contention`], and the operation
//!   re-reads and retries (bounded).  The migration pump may run in a
//!   background thread while foreground clients operate; the stripe
//!   directory's redirect rules arbitrate.
//! * **Exact vs. racy counters**: [`CacheStats`] and
//!   [`ditto_dm::PoolStats`] counters are atomics — individually exact,
//!   but cross-counter snapshots taken mid-run may straddle an operation.
//!   Hit/miss/eviction totals are exact once the issuing threads quiesce.
//!
//! These guarantees are pinned by compile-time assertions at the bottom of
//! this module.
//!
//! # Quick start
//!
//! ```
//! use ditto_core::{DittoCache, DittoConfig};
//! use ditto_dm::DmConfig;
//!
//! let config = DittoConfig::with_capacity(10_000);
//! let cache = DittoCache::with_dedicated_pool(config, DmConfig::default()).unwrap();
//! let mut client = cache.client();
//! client.set(b"user42", b"profile-data");
//! assert_eq!(client.get(b"user42").as_deref(), Some(&b"profile-data"[..]));
//! ```

pub mod adaptive;
pub mod cache;
pub mod client;
pub mod config;
pub mod error;
pub mod fc_cache;
pub mod hash;
pub mod hashtable;
pub mod history;
pub mod inline;
pub mod local_tier;
pub mod object;
pub mod recovery;
pub mod sim;
pub mod slot;
pub mod stats;

pub use adaptive::{ExpertWeights, WeightService};
pub use cache::DittoCache;
pub use client::DittoClient;
pub use config::DittoConfig;
pub use error::{CacheError, CacheResult};
pub use fc_cache::FcCache;
pub use hashtable::SampleFriendlyHashTable;
pub use history::EvictionHistory;
pub use local_tier::{CoherenceBoard, LocalTier, TierProbe};
pub use recovery::{CrashPoint, RecoveryReport};
pub use sim::{simulate_hit_rate, SimCache, SimConfig, SimStats};
pub use stats::{CacheStats, CacheStatsSnapshot};

// Compile-time pins of the threading contract: the shared cache handle is
// `Send + Sync`, the per-thread client is `Send` (movable into a spawned
// thread) but not `Sync`.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<DittoClient>();
    assert_send_sync::<DittoCache>();
    assert_send_sync::<CacheStats>();
    assert_send_sync::<WeightService>();
    assert_send_sync::<EvictionHistory>();
    assert_send_sync::<SampleFriendlyHashTable>();
};
