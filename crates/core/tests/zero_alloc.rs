//! Steady-state heap allocations per `Get`/`Set` must be **zero**.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase that sizes every per-client scratch buffer (bucket/sample scratch,
//! object read buffer, encode buffer, FC-cache map, allocator free lists),
//! replaying further hits, updates and eviction-triggering inserts must not
//! allocate at all.
//!
//! This file deliberately contains a single test: the allocation counter is
//! process-global, so concurrently running tests would pollute the count.

use ditto_core::{DittoCache, DittoConfig};
use ditto_dm::DmConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocations(f: impl FnOnce()) -> u64 {
    COUNTING.store(true, Ordering::SeqCst);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.store(false, Ordering::SeqCst);
    after - before
}

#[test]
fn steady_state_get_and_set_do_not_allocate() {
    let config = DittoConfig::with_capacity(600);
    let cache = DittoCache::with_dedicated_pool(config, DmConfig::default()).unwrap();
    let mut client = cache.client();
    let mut value_buf = Vec::with_capacity(512);
    let key = |i: u64| -> [u8; 8] { i.to_le_bytes() };

    // Warm-up: run the exact op mix the measured phase will run, twice over,
    // so every reusable buffer, free list and hash map reaches its
    // steady-state footprint (inserts overflow capacity, so evictions and
    // history inserts happen here too).
    for round in 0..2u64 {
        for i in 0..1_000u64 {
            client.set(&key(i), &[round as u8; 200]);
        }
        for i in 0..1_000u64 {
            let _ = client.get_into(&key(i), &mut value_buf);
        }
    }

    // Measured phase: hits, misses, updates and eviction-triggering inserts.
    let allocations = count_allocations(|| {
        for round in 2..4u64 {
            for i in 0..1_000u64 {
                client.set(&key(i), &[round as u8; 200]);
            }
            for i in 0..1_000u64 {
                let _ = client.get_into(&key(i), &mut value_buf);
            }
        }
    });

    let snap = cache.stats().snapshot();
    assert!(
        snap.hits > 0,
        "measured phase should produce hits: {snap:?}"
    );
    assert!(
        snap.evictions + snap.bucket_evictions > 0,
        "measured phase should evict: {snap:?}"
    );
    assert_eq!(
        allocations, 0,
        "steady-state Get/Set must not allocate (counted {allocations} allocations \
         over 4000 operations)"
    );

    // Armed-recorder phase: with the flight recorder recording every op and
    // the event log live, the steady state must stay allocation-free — the
    // span ring is pre-allocated at client construction and events are
    // plain-Copy records in a pre-allocated ring.
    let armed_cache = DittoCache::with_dedicated_pool(
        DittoConfig::with_capacity(600),
        DmConfig::default().with_flight_recorder(1 << 14),
    )
    .unwrap();
    let mut armed_client = armed_cache.client();
    for round in 0..2u64 {
        for i in 0..1_000u64 {
            armed_client.set(&key(i), &[round as u8; 200]);
        }
        for i in 0..1_000u64 {
            let _ = armed_client.get_into(&key(i), &mut value_buf);
        }
    }
    let armed_allocations = count_allocations(|| {
        for round in 2..4u64 {
            for i in 0..1_000u64 {
                armed_client.set(&key(i), &[round as u8; 200]);
            }
            for i in 0..1_000u64 {
                let _ = armed_client.get_into(&key(i), &mut value_buf);
            }
        }
    });
    let obs = armed_cache.pool().stats().obs();
    assert!(
        obs.spans_recorded > 0,
        "armed phase should record spans: {obs:?}"
    );
    assert_eq!(
        armed_allocations, 0,
        "armed flight recording must not allocate in steady state \
         (counted {armed_allocations} allocations over 4000 operations)"
    );

    // Armed-sampled phase: 1-in-16 sampling must stay allocation-free too —
    // the sampling draw is a pure hash, the per-phase histograms are
    // pre-allocated at client construction, and skipped ops record nothing.
    let sampled_cache = DittoCache::with_dedicated_pool(
        DittoConfig::with_capacity(600),
        DmConfig::default().with_flight_recorder_sampled(1 << 14, 16),
    )
    .unwrap();
    let mut sampled_client = sampled_cache.client();
    for round in 0..2u64 {
        for i in 0..1_000u64 {
            sampled_client.set(&key(i), &[round as u8; 200]);
        }
        for i in 0..1_000u64 {
            let _ = sampled_client.get_into(&key(i), &mut value_buf);
        }
    }
    let sampled_allocations = count_allocations(|| {
        for round in 2..4u64 {
            for i in 0..1_000u64 {
                sampled_client.set(&key(i), &[round as u8; 200]);
            }
            for i in 0..1_000u64 {
                let _ = sampled_client.get_into(&key(i), &mut value_buf);
            }
        }
    });
    let obs = sampled_cache.pool().stats().obs();
    assert!(
        obs.ops_sampled > 0 && obs.ops_skipped > 0,
        "1-in-16 sampling over 16 000 ops must both keep and skip: {obs:?}"
    );
    assert_eq!(
        sampled_allocations, 0,
        "sampled flight recording must not allocate in steady state \
         (counted {sampled_allocations} allocations over 4000 operations)"
    );

    // Local-tier phase: with the compute-side tier enabled the measured mix
    // exercises every tier path — admissions (CLOCK evictions included),
    // zero-message hits, lease revalidations, board invalidations from the
    // Sets — and must stay allocation-free: tier entries are preallocated,
    // per-entry key/value buffers grow to the largest object seen during
    // warm-up, and the hash index is pre-reserved so it never rehashes.
    let tiered_cache = DittoCache::with_dedicated_pool(
        DittoConfig::with_capacity(600).with_local_tier(256, 20_000),
        DmConfig::default(),
    )
    .unwrap();
    let mut tiered_client = tiered_cache.client();
    for round in 0..2u64 {
        for i in 0..1_000u64 {
            tiered_client.set(&key(i), &[round as u8; 200]);
        }
        for i in 0..1_000u64 {
            let _ = tiered_client.get_into(&key(i), &mut value_buf);
            // Re-read a hot subset so lease-valid tier hits actually occur
            // inside one round (the next round's Sets invalidate them).
            if i % 4 == 0 {
                let _ = tiered_client.get_into(&key(i), &mut value_buf);
            }
        }
    }
    let tiered_allocations = count_allocations(|| {
        for round in 2..4u64 {
            for i in 0..1_000u64 {
                tiered_client.set(&key(i), &[round as u8; 200]);
            }
            for i in 0..1_000u64 {
                let _ = tiered_client.get_into(&key(i), &mut value_buf);
                if i % 4 == 0 {
                    let _ = tiered_client.get_into(&key(i), &mut value_buf);
                }
            }
        }
    });
    let snap = tiered_cache.stats().snapshot();
    assert!(
        snap.local_hits > 0,
        "tiered phase should serve local hits: {snap:?}"
    );
    assert_eq!(
        tiered_allocations, 0,
        "the local tier must not allocate in steady state \
         (counted {tiered_allocations} allocations over 4500 operations)"
    );
}
