//! Get-heavy ops microbenchmark of the pipelined (posted-WQE), batched and
//! sequential data paths, and of multi-memory-node striping.
//!
//! Replays a seeded YCSB-C trace (gets with cache-aside fills) against a
//! `DittoClient` three times — **pipelined** (doorbell batching + async
//! completion polling), **batched** (synchronous doorbell batches) and
//! **unbatched** (sequential round trips) — and reports simulated ops/s,
//! verbs per op, doorbells per op and p50/p99 operation latency as JSON in
//! `BENCH_ops.json`, so future changes can track the performance
//! trajectory.  A second section sweeps the pool from 1 to 8 memory nodes
//! under a deliberately message-bound RNIC budget, in both completion
//! modes: with the hash table, history shards and segments striped by the
//! topology layer, the per-node message load — and therefore the simulated
//! throughput ceiling — must scale with pool size (the fig 17/18
//! elasticity claim), and the pipelined path must never fall below the
//! synchronous-batched ceiling (pipelining buys latency and costs no
//! messages).
//!
//! The process exits non-zero if the batched configuration does not deliver
//! ≥1.3× simulated throughput over unbatched, if the pipelined path does
//! not reach at least the batched throughput (latency-bound section and
//! every message-bound sweep point), if any configuration diverges in
//! hit/miss counts (completion modes must never change cache behaviour),
//! or if the message-bound sweep is not monotonically increasing from 1 to
//! 4 nodes.
//!
//! An observability section prices the flight recorder on the pipelined
//! path: a fully armed row (within 10% of disarmed, in practice identical)
//! and a 1-in-16 **sampled** row that must show exactly 0% simulated
//! overhead with identical hit/miss/eviction counts — the deterministic
//! sampling draw never touches the simulated clock.  The armed run also
//! yields a `phase_attribution` section in `BENCH_ops.json`: per-phase
//! p50/p99 from the pool's phase histograms plus critical-path shares from
//! [`ditto_dm::obs::attribution`], gated to sum to ≤ 100% of elapsed op
//! time.  With `--trace PATH`, a Chrome-tracing document and a companion
//! `PATH.prom`-style Prometheus exposition page are written for
//! `obs_report` to analyze.
//!
//! A degraded-mode section replays the 4-thread concurrency workload under
//! armed verb-fault injection at 0 / 0.1% / 1% and reports ops/s and tail
//! latency per rate, gating that the armed-but-zero row stays within noise
//! of the fault-free concurrency point (fault injection must be free when
//! no faults fire) and that no operations are lost at any rate.
//!
//! A `local_tier` section sweeps Zipf θ ∈ {0.9, 0.99, 1.2} on a read-only
//! trace, replaying each skew remote-only and with the compute-side local
//! tier (`ditto_core::local_tier`) enabled: ops/s, network messages per op
//! and the local hit rate per point, with an FNV checksum over every
//! returned value proving the tier is behaviour-transparent.  The θ=0.99
//! point is gated at ≥1.5× simulated ops/s and ≤0.5× messages per op
//! versus the remote-only baseline.
//!
//! ```text
//! cargo run --release -p ditto-bench --bin ops_bench
//! cargo run --release -p ditto-bench --bin ops_bench -- --requests 500000
//! ```

use ditto_core::{DittoCache, DittoConfig};
use ditto_dm::obs::attribution;
use ditto_dm::{run_clients, AttributionTable, DmConfig, FaultPlan, Phase, PoolStats};
use ditto_workloads::{YcsbSpec, YcsbWorkload};

/// RNIC message budget (verbs/s per node) for the striping sweep — low
/// enough that a single node is message-bound, so adding nodes raises the
/// ceiling until client compute takes over.
const SWEEP_MESSAGE_RATE: u64 = 60_000;

/// Local-tier section: per-client tier capacity (objects) and lease length
/// (simulated ns).  2048 entries cover most of the Zipf hot set at the
/// swept skews without holding the whole key space, and the 50 µs lease is
/// long enough that a hot key amortizes its revalidation READs over many
/// zero-message hits.
const TIER_CAPACITY: usize = 2_048;
const TIER_LEASE_NS: u64 = 50_000;

#[derive(Debug, Clone)]
struct ModeReport {
    ops: u64,
    sim_seconds: f64,
    ops_per_sec: f64,
    verbs_per_op: f64,
    doorbells_per_op: f64,
    mean_batch_size: f64,
    p50_us: f64,
    p99_us: f64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// One phase's row in the `phase_attribution` section of `BENCH_ops.json`:
/// latency quantiles from the pool's per-phase histograms plus raw/critical
/// shares from the retained span window's attribution table.
struct PhaseRow {
    name: &'static str,
    spans: u64,
    hist_count: u64,
    p50_us: f64,
    p99_us: f64,
    critical_share_pct: f64,
    tail_share_pct: f64,
}

/// Per-phase latency + critical-path summary of an armed run.
///
/// Quantiles come from the pool's lifetime [`Phase`] histograms (fed at
/// span close, folded in when the client drops — they cover load *and*
/// measured phases); the shares come from [`attribution`] over the spans
/// the ring retained, which at the benchmark's request counts is the tail
/// window of the measured phase.
struct PhaseBreakdown {
    ops: u64,
    op_p50_us: f64,
    op_p99_us: f64,
    critical_share_total_pct: f64,
    overlap_saved_us: f64,
    rows: Vec<PhaseRow>,
}

impl PhaseBreakdown {
    fn new(table: &AttributionTable, stats: &PoolStats) -> Self {
        let rows = Phase::ALL
            .iter()
            .filter_map(|&phase| {
                let hist = stats.phase_latency(phase);
                let att = &table.phases[phase.index()];
                if hist.count() == 0 && att.spans == 0 {
                    return None;
                }
                let q = hist.quantiles(&[0.5, 0.99]);
                Some(PhaseRow {
                    name: phase.name(),
                    spans: att.spans,
                    hist_count: hist.count(),
                    p50_us: q[0] as f64 / 1e3,
                    p99_us: q[1] as f64 / 1e3,
                    critical_share_pct: 100.0 * att.critical_ns as f64
                        / table.elapsed_ns.max(1) as f64,
                    tail_share_pct: 100.0 * table.tail[phase.index()].critical_ns as f64
                        / table.tail_elapsed_ns.max(1) as f64,
                })
            })
            .collect();
        PhaseBreakdown {
            ops: table.ops,
            op_p50_us: table.op_p50_ns as f64 / 1e3,
            op_p99_us: table.op_p99_ns as f64 / 1e3,
            critical_share_total_pct: 100.0 * table.critical_ns as f64
                / table.elapsed_ns.max(1) as f64,
            overlap_saved_us: table.overlap_saved_ns() as f64 / 1e3,
            rows,
        }
    }
}

fn run_mode(batching: bool, async_completion: bool, spec: &YcsbSpec, capacity: u64) -> ModeReport {
    run_mode_recorded(batching, async_completion, spec, capacity, 0, 1).0
}

/// `run_mode` with an optional armed flight recorder (`recorder_spans > 0`)
/// sampling one op in `sample_one_in`; returns the report, the obs
/// self-accounting snapshot (span tally, sampling split) and — for armed
/// runs — the per-phase latency/critical-path breakdown.
fn run_mode_recorded(
    batching: bool,
    async_completion: bool,
    spec: &YcsbSpec,
    capacity: u64,
    recorder_spans: usize,
    sample_one_in: u64,
) -> (ModeReport, ditto_dm::ObsSnapshot, Option<PhaseBreakdown>) {
    let config = DittoConfig::with_capacity(capacity)
        .with_doorbell_batching(batching)
        .with_async_completion(async_completion);
    let dm = DmConfig::default().with_flight_recorder_sampled(recorder_spans, sample_one_in);
    let cache = DittoCache::with_dedicated_pool(config, dm).unwrap();
    let mut client = cache.client();

    // Load phase: pre-populate every record (not measured).
    let mut value = vec![0u8; spec.value_size as usize];
    for key in 0..spec.record_count {
        value.fill(key as u8);
        client.set(&key.to_le_bytes(), &value);
    }
    // Publish the load-phase clock before resetting so the measurement
    // baseline advances to "now" and simulated time stays monotonic with
    // respect to the timestamps already stored in the table.
    client.dm().publish_clock();
    cache.pool().reset_stats();
    client.dm().reset_clock();
    let baseline_ns = client.dm().now_ns();

    // Measured get-heavy phase with cache-aside fills on miss.
    let mut value_buf = Vec::with_capacity(spec.value_size as usize);
    for request in spec.run_requests(YcsbWorkload::C) {
        let key = request.key_bytes();
        if !client.get_into(&key, &mut value_buf) {
            value.fill(request.key as u8);
            client.set(&key, &value);
        }
    }
    client.flush();

    let stats = cache.pool().stats();
    let snap = &stats.node_snapshots()[0];
    let cache_snap = cache.stats().snapshot();
    let ops = stats.ops();
    let sim_seconds = (client.dm().now_ns() - baseline_ns) as f64 / 1e9;
    let quantiles = stats.latency().quantiles(&[0.5, 0.99]);
    let obs = stats.obs();
    let report = ModeReport {
        ops,
        sim_seconds,
        ops_per_sec: ops as f64 / sim_seconds,
        verbs_per_op: snap.messages as f64 / ops as f64,
        doorbells_per_op: stats.doorbells() as f64 / ops as f64,
        mean_batch_size: stats.mean_batch_size(),
        p50_us: quantiles[0] as f64 / 1_000.0,
        p99_us: quantiles[1] as f64 / 1_000.0,
        hits: cache_snap.hits,
        misses: cache_snap.misses,
        evictions: cache_snap.evictions + cache_snap.bucket_evictions,
    };
    // Armed runs: serialize the retained ring into a critical-path table,
    // then drop the client so its per-phase histograms fold into the pool
    // and the quantiles can be read back.
    let breakdown = if recorder_spans > 0 {
        let spans = client.dm().flight_spans();
        let table = attribution(&[(client.dm().client_id(), spans)]);
        drop(client);
        Some(PhaseBreakdown::new(&table, cache.pool().stats()))
    } else {
        None
    };
    (report, obs, breakdown)
}

#[derive(Debug, Clone)]
struct SweepPoint {
    nodes: u16,
    ops_per_sec: f64,
    sync_batched_ops_per_sec: f64,
    sim_seconds: f64,
    total_messages: u64,
    max_node_messages: u64,
    nic_bound: bool,
}

/// Runs the trace on a pool of `nodes` memory nodes with a throttled RNIC
/// and stretches elapsed time to the most-saturated resource, exactly like
/// `RunReport` does — the ceiling is `max(client time, per-node messages /
/// rate)`, so striping the message load over more nodes raises throughput.
fn run_sweep_point(
    nodes: u16,
    async_completion: bool,
    spec: &YcsbSpec,
    capacity: u64,
) -> SweepPoint {
    let dm = DmConfig::default()
        .with_memory_nodes(nodes)
        .with_message_rate(SWEEP_MESSAGE_RATE);
    let config = DittoConfig::with_capacity(capacity).with_async_completion(async_completion);
    let cache = DittoCache::with_dedicated_pool(config, dm).unwrap();
    let mut client = cache.client();

    let mut value = vec![0u8; spec.value_size as usize];
    for key in 0..spec.record_count {
        value.fill(key as u8);
        client.set(&key.to_le_bytes(), &value);
    }
    client.dm().publish_clock();
    cache.pool().reset_stats();
    client.dm().reset_clock();
    let baseline_ns = client.dm().now_ns();

    let mut value_buf = Vec::with_capacity(spec.value_size as usize);
    for request in spec.run_requests(YcsbWorkload::C) {
        let key = request.key_bytes();
        if !client.get_into(&key, &mut value_buf) {
            value.fill(request.key as u8);
            client.set(&key, &value);
        }
    }
    client.flush();

    let stats = cache.pool().stats();
    let snaps = stats.node_snapshots();
    let ops = stats.ops();
    let client_seconds = (client.dm().now_ns() - baseline_ns) as f64 / 1e9;
    let max_node_messages = snaps.iter().map(|s| s.messages).max().unwrap_or(0);
    let nic_seconds = max_node_messages as f64 / SWEEP_MESSAGE_RATE as f64;
    let sim_seconds = client_seconds.max(nic_seconds).max(1e-12);
    SweepPoint {
        nodes,
        ops_per_sec: ops as f64 / sim_seconds,
        sync_batched_ops_per_sec: 0.0,
        sim_seconds,
        total_messages: snaps.iter().map(|s| s.messages).sum(),
        max_node_messages,
        nic_bound: nic_seconds > client_seconds,
    }
}

/// One sweep point in both completion modes: the emitted `ops_per_sec` is
/// the pipelined path, `sync_batched_ops_per_sec` the synchronous batch.
fn run_sweep_pair(nodes: u16, spec: &YcsbSpec, capacity: u64) -> SweepPoint {
    let sync = run_sweep_point(nodes, false, spec, capacity);
    let mut point = run_sweep_point(nodes, true, spec, capacity);
    point.sync_batched_ops_per_sec = sync.ops_per_sec;
    point
}

/// One point of the concurrency section: `threads` OS threads, each with
/// its own `DittoClient`, hammering **one shared cache**.
#[derive(Debug, Clone)]
struct ConcurrencyPoint {
    threads: usize,
    ops: u64,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    cas_retries: u64,
    lock_acquire_attempts: u64,
    lock_acquisitions: u64,
    lock_wait_retries: u64,
    backoff_ms: f64,
}

/// Runs the get-heavy trace split over `threads` real OS threads sharing
/// one cache (the total request volume is fixed, so more threads mean less
/// work per thread).  Aggregate simulated throughput comes from the
/// harness — elapsed time is the slowest client's clock, stretched to the
/// most saturated resource — and the contention counters are the
/// per-interval delta of the pool's lifetime counters (they survive the
/// harness's stats reset by design).
fn run_concurrency_point(threads: usize, spec: &YcsbSpec, capacity: u64) -> ConcurrencyPoint {
    let cache =
        DittoCache::with_dedicated_pool(DittoConfig::with_capacity(capacity), DmConfig::default())
            .unwrap();
    // Load phase: one client pre-populates every record (not measured).
    {
        let mut client = cache.client();
        let mut value = vec![0u8; spec.value_size as usize];
        for key in 0..spec.record_count {
            value.fill(key as u8);
            client.set(&key.to_le_bytes(), &value);
        }
        client.dm().publish_clock();
    }
    let contention_before = cache.pool().stats().contention();

    let per_thread = YcsbSpec {
        request_count: spec.request_count / threads as u64,
        ..*spec
    };
    let (report, _) = run_clients(cache.pool(), threads, |ctx| {
        let mut client = cache.client();
        client.dm().reset_clock();
        let mut value = vec![0u8; per_thread.value_size as usize];
        let mut value_buf = Vec::with_capacity(per_thread.value_size as usize);
        // Distinct seed per thread: overlapping Zipf key popularity (real
        // slot contention) without identical request order.
        let requests = per_thread.run_requests_seeded(YcsbWorkload::C, 1_000 + ctx.index as u64);
        for request in requests {
            let key = request.key_bytes();
            if !client.get_into(&key, &mut value_buf) {
                value.fill(request.key as u8);
                client.set(&key, &value);
            }
        }
        client.flush();
    });
    let contention = cache.pool().stats().contention().delta(&contention_before);

    ConcurrencyPoint {
        threads,
        ops: report.total_ops,
        ops_per_sec: report.throughput_mops * 1e6,
        p50_us: report.p50_latency_us,
        p99_us: report.p99_latency_us,
        cas_retries: contention.cas_retries,
        lock_acquire_attempts: contention.lock_acquire_attempts,
        lock_acquisitions: contention.lock_acquisitions,
        lock_wait_retries: contention.lock_wait_retries,
        backoff_ms: contention.backoff_ns as f64 / 1e6,
    }
}

/// One point of the degraded-mode section: the 4-thread concurrency
/// workload with an *armed* fault injector delivering `fault_ppm` verb
/// error completions (plus half that rate of verb timeouts) per million
/// verbs.
#[derive(Debug, Clone)]
struct DegradedPoint {
    fault_ppm: u32,
    ops: u64,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    verb_failures: u64,
    verb_timeouts: u64,
    verb_retries: u64,
    retry_backoff_ms: f64,
}

/// Degraded-mode throughput: the 4-thread shared-cache workload of the
/// concurrency section, replayed on a pool whose fault injector is armed
/// at `fault_ppm`.  The 0-ppm point runs with the injector *armed on an
/// all-zero plan* — it prices the injection plumbing itself, and `main`
/// gates it against the fault-free 4-thread concurrency point.
fn run_degraded_point(fault_ppm: u32, spec: &YcsbSpec, capacity: u64) -> DegradedPoint {
    const THREADS: usize = 4;
    let plan = FaultPlan::seeded(0xBE9C + u64::from(fault_ppm))
        .with_verb_fail_ppm(fault_ppm)
        .with_verb_timeouts(fault_ppm / 2, 20_000);
    let cache = DittoCache::with_dedicated_pool(
        DittoConfig::with_capacity(capacity),
        DmConfig::default().with_fault_plan(plan),
    )
    .unwrap();
    let injector = cache.pool().fault_injector();
    injector.set_armed(false);
    {
        let mut client = cache.client();
        let mut value = vec![0u8; spec.value_size as usize];
        for key in 0..spec.record_count {
            value.fill(key as u8);
            client.set(&key.to_le_bytes(), &value);
        }
        client.dm().publish_clock();
    }
    let faults_before = cache.pool().stats().faults();

    injector.set_armed(true);
    let per_thread = YcsbSpec {
        request_count: spec.request_count / THREADS as u64,
        ..*spec
    };
    let (report, _) = run_clients(cache.pool(), THREADS, |ctx| {
        let mut client = cache.client();
        client.dm().reset_clock();
        let mut value = vec![0u8; per_thread.value_size as usize];
        let mut value_buf = Vec::with_capacity(per_thread.value_size as usize);
        let requests = per_thread.run_requests_seeded(YcsbWorkload::C, 1_000 + ctx.index as u64);
        for request in requests {
            let key = request.key_bytes();
            if !client.get_into(&key, &mut value_buf) {
                value.fill(request.key as u8);
                client.set(&key, &value);
            }
        }
        client.flush();
    });
    injector.set_armed(false);
    let faults = cache.pool().stats().faults().delta(&faults_before);

    DegradedPoint {
        fault_ppm,
        ops: report.total_ops,
        ops_per_sec: report.throughput_mops * 1e6,
        p50_us: report.p50_latency_us,
        p99_us: report.p99_latency_us,
        verb_failures: faults.verb_failures,
        verb_timeouts: faults.verb_timeouts,
        verb_retries: faults.verb_retries,
        retry_backoff_ms: faults.retry_backoff_ns as f64 / 1e6,
    }
}

/// One run of the local-tier trace: simulated throughput, network messages
/// per operation, the tier's coherence counters and an FNV checksum over
/// every returned value (hit/miss flags included) so the tier-enabled run
/// can be proven byte-identical to the remote-only run.
#[derive(Debug, Clone)]
struct TierRun {
    ops_per_sec: f64,
    messages_per_op: f64,
    checksum: u64,
    local_hits: u64,
    local_revalidations: u64,
    local_hit_rate: f64,
}

/// One θ point of the `local_tier` section: the same seeded trace replayed
/// remote-only and with the compute-side tier enabled.
#[derive(Debug, Clone)]
struct TierPoint {
    theta: f64,
    remote: TierRun,
    tiered: TierRun,
    speedup: f64,
    message_ratio: f64,
}

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Replays a seeded read-only YCSB-C trace against a cache sized past the
/// record count (every Get hits, neither run evicts — so the remote-only
/// and tier-enabled runs are exactly comparable) and reports simulated
/// ops/s, messages per op and the value checksum.  The tier turns the
/// skew's hot set into zero-message local hits; the remote-only run pays a
/// bucket scan plus an object READ for every single Get.
fn run_tier_trace(spec: &YcsbSpec, tier: Option<(usize, u64)>) -> TierRun {
    let mut config = DittoConfig::with_capacity(spec.record_count * 2);
    if let Some((capacity, lease_ns)) = tier {
        config = config.with_local_tier(capacity, lease_ns);
    }
    let cache = DittoCache::with_dedicated_pool(config, DmConfig::default()).unwrap();
    let mut client = cache.client();

    // Load phase populates the run phase's actual key space (unlike the
    // mode sections, which deliberately leave the run phase to cache-aside
    // fills): the measured window must be pure Gets so the message counts
    // isolate the read path.
    let mut value = vec![0u8; spec.value_size as usize];
    for request in spec.load_requests() {
        value.fill(request.key as u8);
        client.set(&request.key_bytes(), &value);
    }
    client.dm().publish_clock();
    cache.pool().reset_stats();
    client.dm().reset_clock();
    let baseline_ns = client.dm().now_ns();
    let local_before = cache.stats().snapshot();

    let mut value_buf = Vec::with_capacity(spec.value_size as usize);
    let mut checksum: u64 = 0xcbf29ce484222325;
    for request in spec.run_requests(YcsbWorkload::C) {
        let hit = client.get_into(&request.key_bytes(), &mut value_buf);
        checksum = fnv1a(checksum, &[u8::from(hit)]);
        if hit {
            checksum = fnv1a(checksum, &value_buf);
        }
    }
    client.flush();

    let sim_seconds = ((client.dm().now_ns() - baseline_ns) as f64 / 1e9).max(1e-12);
    let messages: u64 = cache
        .pool()
        .stats()
        .node_snapshots()
        .iter()
        .map(|s| s.messages)
        .sum();
    let local_after = cache.stats().snapshot();
    let local_hits = local_after.local_hits - local_before.local_hits;
    TierRun {
        ops_per_sec: spec.request_count as f64 / sim_seconds,
        messages_per_op: messages as f64 / spec.request_count as f64,
        checksum,
        local_hits,
        local_revalidations: local_after.local_revalidations - local_before.local_revalidations,
        local_hit_rate: local_hits as f64 / spec.request_count as f64,
    }
}

fn tier_point_json(point: &TierPoint) -> String {
    format!(
        concat!(
            "{{ \"theta\": {:.2}, \"remote_ops_per_sec\": {:.1}, ",
            "\"tiered_ops_per_sec\": {:.1}, \"speedup\": {:.4}, ",
            "\"remote_messages_per_op\": {:.4}, \"tiered_messages_per_op\": {:.4}, ",
            "\"message_ratio\": {:.4}, \"local_hit_rate\": {:.4}, ",
            "\"local_hits\": {}, \"local_revalidations\": {}, \"values_match\": {} }}"
        ),
        point.theta,
        point.remote.ops_per_sec,
        point.tiered.ops_per_sec,
        point.speedup,
        point.remote.messages_per_op,
        point.tiered.messages_per_op,
        point.message_ratio,
        point.tiered.local_hit_rate,
        point.tiered.local_hits,
        point.tiered.local_revalidations,
        point.remote.checksum == point.tiered.checksum,
    )
}

/// One batching mode's trip through the online-resize timeline (fig 18 on
/// the ops-bench workload): steady → add_node (pump interleaved with
/// serving) → migrated → drain (pump interleaved) → drained-to-empty.
#[derive(Debug, Clone)]
struct ResizeReport {
    steady_ops_per_sec: f64,
    migrating_ops_per_sec: f64,
    migrated_ops_per_sec: f64,
    draining_ops_per_sec: f64,
    drained_ops_per_sec: f64,
    grow_stripes: u64,
    grow_objects: u64,
    shrink_stripes: u64,
    shrink_objects: u64,
    drained_residual_bytes: u64,
    drained_node_reads: u64,
    total_reads: u64,
}

/// Replays one measured window (get-heavy with cache-aside fills),
/// optionally pumping the migration every `pump_every` requests so the
/// copy/relocation traffic lands *inside* the window.  Returns simulated
/// ops/s stretched to the most-saturated resource plus the migration
/// progress the in-window pumps made.
fn resize_window(
    cache: &ditto_core::DittoCache,
    client: &mut ditto_core::DittoClient,
    spec: &YcsbSpec,
    seed: u64,
    pump_every: Option<usize>,
) -> (f64, ditto_core::cache::MigrationProgress) {
    client.dm().publish_clock();
    cache.pool().reset_stats();
    client.dm().reset_clock();
    let baseline_ns = client.dm().now_ns();
    let mut value = vec![0u8; spec.value_size as usize];
    let mut value_buf = Vec::with_capacity(spec.value_size as usize);
    let mut pumped = ditto_core::cache::MigrationProgress::default();
    for (i, request) in spec
        .run_requests_seeded(YcsbWorkload::C, seed)
        .iter()
        .enumerate()
    {
        let key = request.key_bytes();
        if !client.get_into(&key, &mut value_buf) {
            value.fill(request.key as u8);
            client.set(&key, &value);
        }
        if let Some(every) = pump_every {
            if i % every == every - 1 {
                let p = client.pump_migration(2);
                pumped.stripes_moved += p.stripes_moved;
                pumped.objects_relocated += p.objects_relocated;
            }
        }
    }
    let stats = cache.pool().stats();
    let ops = stats.ops();
    let client_seconds = (client.dm().now_ns() - baseline_ns) as f64 / 1e9;
    let max_node_messages = stats
        .node_snapshots()
        .iter()
        .map(|s| s.messages)
        .max()
        .unwrap_or(0);
    let nic_seconds = max_node_messages as f64 / SWEEP_MESSAGE_RATE as f64;
    (
        ops as f64 / client_seconds.max(nic_seconds).max(1e-12),
        pumped,
    )
}

fn run_resize_mode(batching: bool, spec: &YcsbSpec, capacity: u64) -> ResizeReport {
    let dm = DmConfig::default()
        .with_memory_nodes(2)
        .with_message_rate(SWEEP_MESSAGE_RATE);
    let config = DittoConfig::with_capacity(capacity).with_doorbell_batching(batching);
    let cache = DittoCache::with_dedicated_pool(config, dm).unwrap();
    let mut client = cache.client();

    let mut value = vec![0u8; spec.value_size as usize];
    for key in 0..spec.record_count {
        value.fill(key as u8);
        client.set(&key.to_le_bytes(), &value);
    }

    let (steady, _) = resize_window(&cache, &mut client, spec, 300, None);
    cache.pool().add_node().unwrap();
    let (migrating, in_window_grow) = resize_window(&cache, &mut client, spec, 301, Some(256));
    let grow = cache.pump_migration();
    let (migrated, _) = resize_window(&cache, &mut client, spec, 302, None);
    cache.pool().drain_node(1).unwrap();
    let (draining, in_window_shrink) = resize_window(&cache, &mut client, spec, 303, Some(256));
    let shrink = cache.pump_migration();
    let (drained, _) = resize_window(&cache, &mut client, spec, 304, None);
    let snaps = cache.pool().stats().node_snapshots();
    let drained_node_reads = snaps[1].reads;
    let total_reads: u64 = snaps.iter().map(|s| s.reads).sum();
    ResizeReport {
        steady_ops_per_sec: steady,
        migrating_ops_per_sec: migrating,
        migrated_ops_per_sec: migrated,
        draining_ops_per_sec: draining,
        drained_ops_per_sec: drained,
        grow_stripes: in_window_grow.stripes_moved + grow.stripes_moved,
        grow_objects: in_window_grow.objects_relocated + grow.objects_relocated,
        shrink_stripes: in_window_shrink.stripes_moved + shrink.stripes_moved,
        shrink_objects: in_window_shrink.objects_relocated + shrink.objects_relocated,
        drained_residual_bytes: cache.pool().resident_object_bytes(1),
        drained_node_reads,
        total_reads,
    }
}

fn resize_json(report: &ResizeReport) -> String {
    format!(
        concat!(
            "{{\n",
            "      \"steady_ops_per_sec\": {:.1},\n",
            "      \"migrating_ops_per_sec\": {:.1},\n",
            "      \"migrated_ops_per_sec\": {:.1},\n",
            "      \"draining_ops_per_sec\": {:.1},\n",
            "      \"drained_ops_per_sec\": {:.1},\n",
            "      \"grow_stripes\": {},\n",
            "      \"grow_objects\": {},\n",
            "      \"shrink_stripes\": {},\n",
            "      \"shrink_objects\": {},\n",
            "      \"drained_residual_bytes\": {},\n",
            "      \"drained_node_reads\": {},\n",
            "      \"total_reads\": {}\n",
            "    }}"
        ),
        report.steady_ops_per_sec,
        report.migrating_ops_per_sec,
        report.migrated_ops_per_sec,
        report.draining_ops_per_sec,
        report.drained_ops_per_sec,
        report.grow_stripes,
        report.grow_objects,
        report.shrink_stripes,
        report.shrink_objects,
        report.drained_residual_bytes,
        report.drained_node_reads,
        report.total_reads,
    )
}

fn concurrency_json(point: &ConcurrencyPoint) -> String {
    format!(
        concat!(
            "{{ \"threads\": {}, \"ops\": {}, \"ops_per_sec\": {:.1}, ",
            "\"p50_latency_us\": {:.3}, \"p99_latency_us\": {:.3}, ",
            "\"cas_retries\": {}, \"lock_acquire_attempts\": {}, ",
            "\"lock_acquisitions\": {}, \"lock_wait_retries\": {}, ",
            "\"backoff_ms\": {:.3} }}"
        ),
        point.threads,
        point.ops,
        point.ops_per_sec,
        point.p50_us,
        point.p99_us,
        point.cas_retries,
        point.lock_acquire_attempts,
        point.lock_acquisitions,
        point.lock_wait_retries,
        point.backoff_ms,
    )
}

fn degraded_json(point: &DegradedPoint) -> String {
    format!(
        concat!(
            "{{ \"fault_ppm\": {}, \"ops\": {}, \"ops_per_sec\": {:.1}, ",
            "\"p50_latency_us\": {:.3}, \"p99_latency_us\": {:.3}, ",
            "\"verb_failures\": {}, \"verb_timeouts\": {}, ",
            "\"verb_retries\": {}, \"retry_backoff_ms\": {:.3} }}"
        ),
        point.fault_ppm,
        point.ops,
        point.ops_per_sec,
        point.p50_us,
        point.p99_us,
        point.verb_failures,
        point.verb_timeouts,
        point.verb_retries,
        point.retry_backoff_ms,
    )
}

fn sweep_json(point: &SweepPoint) -> String {
    format!(
        concat!(
            "{{ \"nodes\": {}, \"ops_per_sec\": {:.1}, ",
            "\"sync_batched_ops_per_sec\": {:.1}, \"simulated_seconds\": {:.6}, ",
            "\"messages_total\": {}, \"max_node_messages\": {}, \"nic_bound\": {} }}"
        ),
        point.nodes,
        point.ops_per_sec,
        point.sync_batched_ops_per_sec,
        point.sim_seconds,
        point.total_messages,
        point.max_node_messages,
        point.nic_bound,
    )
}

fn phase_row_json(row: &PhaseRow) -> String {
    format!(
        "{{\"phase\": \"{}\", \"spans\": {}, \"hist_count\": {}, \"p50_us\": {:.3}, \
         \"p99_us\": {:.3}, \"critical_share_pct\": {:.2}, \"tail_share_pct\": {:.2}}}",
        row.name,
        row.spans,
        row.hist_count,
        row.p50_us,
        row.p99_us,
        row.critical_share_pct,
        row.tail_share_pct,
    )
}

fn mode_json(report: &ModeReport) -> String {
    format!(
        concat!(
            "{{\n",
            "      \"ops\": {},\n",
            "      \"simulated_seconds\": {:.6},\n",
            "      \"ops_per_sec\": {:.1},\n",
            "      \"verbs_per_op\": {:.4},\n",
            "      \"doorbells_per_op\": {:.4},\n",
            "      \"mean_batch_size\": {:.4},\n",
            "      \"p50_latency_us\": {:.3},\n",
            "      \"p99_latency_us\": {:.3},\n",
            "      \"hits\": {},\n",
            "      \"misses\": {},\n",
            "      \"evictions\": {}\n",
            "    }}"
        ),
        report.ops,
        report.sim_seconds,
        report.ops_per_sec,
        report.verbs_per_op,
        report.doorbells_per_op,
        report.mean_batch_size,
        report.p50_us,
        report.p99_us,
        report.hits,
        report.misses,
        report.evictions,
    )
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git (or the repository) is unavailable — stamps `BENCH_ops.json`
/// so archived results are attributable to a commit.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// FNV-1a over the benchmark-relevant configuration, so two result files
/// are comparable exactly when their fingerprints match.
fn config_fingerprint(spec: &YcsbSpec, capacity: u64) -> u64 {
    let text = format!("{spec:?}|capacity={capacity}|sweep_rate={SWEEP_MESSAGE_RATE}");
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Runs a short seeded pipelined window with the flight recorder armed and
/// writes the spans + event log as a Chrome-tracing JSON document to
/// `path` (open it in `chrome://tracing` or Perfetto).
fn write_trace(path: &str) {
    let spec = YcsbSpec {
        record_count: 2_000,
        request_count: 5_000,
        ..YcsbSpec::default()
    }
    .with_seed(42);
    let capacity = spec.record_count * 7 / 10;
    let dm = DmConfig::default().with_flight_recorder(1 << 17);
    let cache = DittoCache::with_dedicated_pool(DittoConfig::with_capacity(capacity), dm).unwrap();
    let mut client = cache.client();
    let mut value = vec![0u8; spec.value_size as usize];
    for key in 0..spec.record_count {
        value.fill(key as u8);
        client.set(&key.to_le_bytes(), &value);
    }
    // Trace only the measured window: drop the load phase's spans.
    client.dm().clear_flight_recorder();
    let mut value_buf = Vec::with_capacity(spec.value_size as usize);
    for request in spec.run_requests(YcsbWorkload::C) {
        let key = request.key_bytes();
        if !client.get_into(&key, &mut value_buf) {
            value.fill(request.key as u8);
            client.set(&key, &value);
        }
    }
    client.flush();
    let spans = client.dm().flight_spans();
    let events = cache.pool().events_snapshot();
    eprintln!(
        "ops_bench: writing {} spans and {} events to {path}",
        spans.len(),
        events.len()
    );
    let json = ditto_dm::obs::chrome_trace_json(&[(client.dm().client_id(), spans)], &events);
    std::fs::write(path, &json).expect("write trace file");
    // Companion exposition page for `obs_report`: drop the client so its
    // per-phase histograms fold into the pool, then render the Prometheus
    // text page next to the trace.
    drop(client);
    let prom_path = format!("{}.prom", path.trim_end_matches(".json"));
    std::fs::write(&prom_path, cache.text_exposition()).expect("write exposition page");
    eprintln!("ops_bench: wrote phase exposition to {prom_path}");
}

fn main() {
    let mut requests: u64 = 200_000;
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a number");
            }
            "--trace" => {
                trace_path = Some(args.next().expect("--trace needs a file path"));
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let spec = YcsbSpec {
        record_count: 10_000,
        request_count: requests,
        ..YcsbSpec::default()
    }
    .with_seed(42);
    // Capacity below the record count: the get-heavy phase mixes hits,
    // misses with cache-aside fills, and eviction pressure.
    let capacity = spec.record_count * 7 / 10;

    eprintln!(
        "ops_bench: YCSB-C, {requests} requests, {} records",
        spec.record_count
    );
    let pipelined = run_mode(true, true, &spec, capacity);
    eprintln!(
        "  pipelined: {:>12.0} ops/s  {:.2} verbs/op  {:.2} µs p50  {:.2} µs p99",
        pipelined.ops_per_sec, pipelined.verbs_per_op, pipelined.p50_us, pipelined.p99_us
    );
    let batched = run_mode(true, false, &spec, capacity);
    eprintln!(
        "  batched:   {:>12.0} ops/s  {:.2} verbs/op  {:.2} µs p50  {:.2} µs p99",
        batched.ops_per_sec, batched.verbs_per_op, batched.p50_us, batched.p99_us
    );
    let unbatched = run_mode(false, false, &spec, capacity);
    eprintln!(
        "  unbatched: {:>12.0} ops/s  {:.2} verbs/op  {:.2} µs p50  {:.2} µs p99",
        unbatched.ops_per_sec, unbatched.verbs_per_op, unbatched.p50_us, unbatched.p99_us
    );
    let speedup = batched.ops_per_sec / unbatched.ops_per_sec;
    let pipelined_speedup = pipelined.ops_per_sec / batched.ops_per_sec;
    eprintln!("  batched/unbatched speedup:  {speedup:.3}x");
    eprintln!("  pipelined/batched speedup:  {pipelined_speedup:.3}x");

    // Armed flight recorder on the pipelined path: recording reads the
    // simulated clock but never advances it, so the armed row must stay
    // within 10% of the disarmed pipelined ops/s (in practice: identical).
    let (armed, armed_obs, armed_breakdown) =
        run_mode_recorded(true, true, &spec, capacity, 1 << 16, 1);
    let armed_spans = armed_obs.spans_recorded;
    let armed_overhead = (pipelined.ops_per_sec - armed.ops_per_sec) / pipelined.ops_per_sec;
    eprintln!(
        "  armed:     {:>12.0} ops/s  ({} spans recorded, {:.2}% overhead)",
        armed.ops_per_sec,
        armed_spans,
        armed_overhead * 100.0
    );
    assert!(armed_spans > 0, "armed recorder must record spans");
    assert!(
        armed.ops_per_sec >= pipelined.ops_per_sec * 0.9,
        "armed flight recorder costs more than 10% simulated ops/s: \
         {:.0} armed vs {:.0} disarmed",
        armed.ops_per_sec,
        pipelined.ops_per_sec
    );
    assert_eq!(
        (armed.hits, armed.misses, armed.evictions),
        (pipelined.hits, pipelined.misses, pipelined.evictions),
        "arming the recorder must not change cache behaviour"
    );

    // Sampled arming (1-in-16): the production "always-on" mode.  The
    // sampling draw is a pure hash off the simulated-clock path, so the row
    // must show **zero** simulated overhead — ops/s exactly equal to the
    // disarmed pipelined row — with identical cache behaviour.
    let (sampled, sampled_obs, _) = run_mode_recorded(true, true, &spec, capacity, 1 << 16, 16);
    eprintln!(
        "  sampled:   {:>12.0} ops/s  (1-in-16: {} ops sampled, {} skipped, {} spans)",
        sampled.ops_per_sec,
        sampled_obs.ops_sampled,
        sampled_obs.ops_skipped,
        sampled_obs.spans_recorded
    );
    assert_eq!(
        sampled.ops_per_sec, pipelined.ops_per_sec,
        "sampled arming must cost 0% simulated ops/s (the draw never touches the clock)"
    );
    assert_eq!(
        (sampled.hits, sampled.misses, sampled.evictions),
        (pipelined.hits, pipelined.misses, pipelined.evictions),
        "sampled arming must not change cache behaviour"
    );
    assert!(
        sampled_obs.ops_sampled > 0 && sampled_obs.ops_skipped > 0,
        "1-in-16 sampling must both keep and skip ops: {sampled_obs:?}"
    );
    assert!(
        sampled_obs.spans_recorded < armed_spans,
        "sampling must record fewer spans than full arming: {} vs {armed_spans}",
        sampled_obs.spans_recorded
    );

    // Critical-path attribution of the armed pipelined run: where op time
    // goes once overlap is serialized.  Exclusive charging means the
    // per-phase shares can never sum past 100% of elapsed op time.
    let attribution_table = armed_breakdown.expect("armed run must produce a phase breakdown");
    eprintln!(
        "  attribution: {} ops, op p50 {:.2} µs, op p99 {:.2} µs, critical {:.1}%, \
         overlap saved {:.1} µs",
        attribution_table.ops,
        attribution_table.op_p50_us,
        attribution_table.op_p99_us,
        attribution_table.critical_share_total_pct,
        attribution_table.overlap_saved_us,
    );
    for row in &attribution_table.rows {
        eprintln!(
            "    {:<9} {:>7} spans  p50 {:>8.2} µs  p99 {:>8.2} µs  critical {:>5.1}%  tail {:>5.1}%",
            row.name, row.spans, row.p50_us, row.p99_us, row.critical_share_pct,
            row.tail_share_pct,
        );
    }
    assert!(
        attribution_table.ops > 0 && !attribution_table.rows.is_empty(),
        "attribution must cover the measured window"
    );
    assert!(
        attribution_table.critical_share_total_pct <= 100.0 + 1e-9,
        "critical-path shares must sum to <= 100% of elapsed op time, got {:.4}%",
        attribution_table.critical_share_total_pct
    );

    if let Some(path) = &trace_path {
        write_trace(path);
    }

    // Multi-memory-node striping sweep under a message-bound RNIC budget.
    let sweep_spec = YcsbSpec {
        record_count: spec.record_count,
        request_count: (requests / 4).max(20_000),
        ..YcsbSpec::default()
    }
    .with_seed(42);
    eprintln!(
        "ops_bench: MN sweep, {} requests, {} msg/s per NIC",
        sweep_spec.request_count, SWEEP_MESSAGE_RATE
    );
    let mut sweep = Vec::new();
    for nodes in [1u16, 2, 4, 8] {
        let point = run_sweep_pair(nodes, &sweep_spec, capacity);
        eprintln!(
            "  {} MN: {:>12.0} ops/s pipelined  {:>12.0} ops/s batched  max-node {:>8} msgs  ({})",
            point.nodes,
            point.ops_per_sec,
            point.sync_batched_ops_per_sec,
            point.max_node_messages,
            if point.nic_bound {
                "NIC-bound"
            } else {
                "client-bound"
            }
        );
        sweep.push(point);
    }

    // Online-resize window (fig 18 smoke): batched vs unbatched across an
    // add → migrate → drain-to-empty timeline under the message-bound
    // budget, gating that the drained node really reaches zero bytes.
    let resize_spec = YcsbSpec {
        record_count: spec.record_count,
        request_count: (requests / 8).max(10_000),
        ..YcsbSpec::default()
    }
    .with_seed(42);
    eprintln!(
        "ops_bench: resize window, {} requests/window, {} msg/s per NIC",
        resize_spec.request_count, SWEEP_MESSAGE_RATE
    );
    let resize_batched = run_resize_mode(true, &resize_spec, capacity);
    let resize_unbatched = run_resize_mode(false, &resize_spec, capacity);
    for (name, r) in [
        ("batched", &resize_batched),
        ("unbatched", &resize_unbatched),
    ] {
        eprintln!(
            "  {name:<10} steady {:>8.0}  migrating {:>8.0}  migrated {:>8.0}  draining {:>8.0}  drained {:>8.0} ops/s  (residual {} B)",
            r.steady_ops_per_sec,
            r.migrating_ops_per_sec,
            r.migrated_ops_per_sec,
            r.draining_ops_per_sec,
            r.drained_ops_per_sec,
            r.drained_residual_bytes,
        );
    }

    // Truly concurrent clients: aggregate throughput and tail latency for
    // 1/2/4/8 OS threads sharing one cache, with the pool's contention
    // counters (CAS retries, lock traffic, backoff) per point.
    let conc_spec = YcsbSpec {
        record_count: spec.record_count,
        request_count: (requests / 4).max(20_000),
        ..YcsbSpec::default()
    }
    .with_seed(42);
    eprintln!(
        "ops_bench: concurrency, {} total requests per point",
        conc_spec.request_count
    );
    let mut concurrency = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let point = run_concurrency_point(threads, &conc_spec, capacity);
        eprintln!(
            "  {:>2} thr: {:>12.0} ops/s  {:.2} µs p50  {:.2} µs p99  {:>6} cas-retries  {:>6} lock-waits",
            point.threads,
            point.ops_per_sec,
            point.p50_us,
            point.p99_us,
            point.cas_retries,
            point.lock_wait_retries,
        );
        concurrency.push(point);
    }

    // Degraded mode: the same 4-thread workload under armed verb-fault
    // injection at 0 / 0.1% / 1%.  The 0-ppm row prices the injection
    // plumbing itself and must stay within noise of the fault-free
    // 4-thread concurrency point above; the faulted rows must actually
    // inject (and retry) faults without losing operations.
    eprintln!(
        "ops_bench: degraded mode, {} total requests per point",
        conc_spec.request_count
    );
    let mut degraded = Vec::new();
    for fault_ppm in [0u32, 1_000, 10_000] {
        let point = run_degraded_point(fault_ppm, &conc_spec, capacity);
        eprintln!(
            "  {:>5} ppm: {:>12.0} ops/s  {:.2} µs p50  {:.2} µs p99  {:>6} faults  {:>6} retries",
            point.fault_ppm,
            point.ops_per_sec,
            point.p50_us,
            point.p99_us,
            point.verb_failures + point.verb_timeouts,
            point.verb_retries,
        );
        degraded.push(point);
    }
    let conc4 = concurrency
        .iter()
        .find(|p| p.threads == 4)
        .expect("4-thread point");
    let fault_free = &degraded[0];
    assert_eq!(fault_free.verb_failures + fault_free.verb_timeouts, 0);
    let drift = (fault_free.ops_per_sec - conc4.ops_per_sec).abs() / conc4.ops_per_sec;
    assert!(
        drift < 0.05,
        "armed-but-zero fault injection must be free: degraded 0-ppm row {:.0} ops/s \
         vs fault-free 4-thread point {:.0} ops/s ({:.2}% drift)",
        fault_free.ops_per_sec,
        conc4.ops_per_sec,
        drift * 100.0,
    );
    for point in &degraded[1..] {
        assert!(
            point.verb_failures > 0 && point.verb_retries > 0,
            "{} ppm row injected no faults",
            point.fault_ppm
        );
        // A faulted Get degrades to a miss and triggers an extra
        // cache-aside fill, so op totals drift slightly upward with the
        // rate — but every request must complete (no wedged clients).
        assert!(
            point.ops >= conc_spec.request_count,
            "{} ppm row wedged: {} ops for {} requests",
            point.fault_ppm,
            point.ops,
            conc_spec.request_count
        );
    }

    // Compute-side local tier: the same seeded read-only trace replayed
    // remote-only vs tier-enabled across three Zipf skews.  The gated
    // claim is the tentpole one — at θ=0.99 the tier must deliver ≥1.5×
    // simulated ops/s on ≤0.5× network messages per op, returning
    // byte-identical values (checked via the per-run FNV checksum).
    let tier_spec_for = |theta: f64| {
        YcsbSpec {
            record_count: spec.record_count,
            request_count: (requests / 4).max(20_000),
            theta,
            ..YcsbSpec::default()
        }
        .with_seed(42)
    };
    eprintln!(
        "ops_bench: local tier, {} requests per point, {} entries, {} ns lease",
        tier_spec_for(0.99).request_count,
        TIER_CAPACITY,
        TIER_LEASE_NS
    );
    let mut tier_points = Vec::new();
    for theta in [0.9f64, 0.99, 1.2] {
        let tier_spec = tier_spec_for(theta);
        let remote = run_tier_trace(&tier_spec, None);
        let tiered = run_tier_trace(&tier_spec, Some((TIER_CAPACITY, TIER_LEASE_NS)));
        let point = TierPoint {
            theta,
            speedup: tiered.ops_per_sec / remote.ops_per_sec,
            message_ratio: tiered.messages_per_op / remote.messages_per_op,
            remote,
            tiered,
        };
        eprintln!(
            "  θ={:<5} {:>11.0} -> {:>11.0} ops/s ({:.2}x)  {:.3} -> {:.3} msgs/op ({:.2}x)  {:.1}% local",
            point.theta,
            point.remote.ops_per_sec,
            point.tiered.ops_per_sec,
            point.speedup,
            point.remote.messages_per_op,
            point.tiered.messages_per_op,
            point.message_ratio,
            point.tiered.local_hit_rate * 100.0,
        );
        assert_eq!(
            point.remote.checksum, point.tiered.checksum,
            "θ={theta}: tier-enabled run diverged from the remote-only values"
        );
        assert_eq!(
            point.remote.local_hits, 0,
            "θ={theta}: remote-only run used the tier"
        );
        assert!(
            point.tiered.local_hits > 0 && point.tiered.local_revalidations > 0,
            "θ={theta}: the tier must serve local hits and revalidate expired leases \
             (hits {}, revalidations {})",
            point.tiered.local_hits,
            point.tiered.local_revalidations
        );
        tier_points.push(point);
    }
    let tier_hot = tier_points
        .iter()
        .find(|p| (p.theta - 0.99).abs() < 1e-9)
        .expect("θ=0.99 tier point");
    assert!(
        tier_hot.speedup >= 1.5,
        "local tier must deliver >=1.5x simulated ops/s at θ=0.99, measured {:.3}x",
        tier_hot.speedup
    );
    assert!(
        tier_hot.message_ratio <= 0.5,
        "local tier must cost <=0.5x network messages per op at θ=0.99, measured {:.3}x",
        tier_hot.message_ratio
    );

    let describe = git_describe();
    if describe.ends_with("-dirty") {
        eprintln!("ops_bench: ================================================================");
        eprintln!("ops_bench: WARNING: working tree is DIRTY — BENCH_ops.json will be stamped");
        eprintln!("ops_bench: \"{describe}\" and is NOT attributable to a commit.  Commit (or");
        eprintln!("ops_bench: stash) first before checking the result file in.");
        eprintln!("ops_bench: ================================================================");
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"ops\",\n",
            "  \"schema_version\": 3,\n",
            "  \"git_describe\": \"{}\",\n",
            "  \"config_fingerprint\": \"{:016x}\",\n",
            "  \"workload\": \"ycsb-c\",\n",
            "  \"requests\": {},\n",
            "  \"records\": {},\n",
            "  \"capacity_objects\": {},\n",
            "  \"modes\": {{\n",
            "    \"pipelined\": {},\n",
            "    \"batched\": {},\n",
            "    \"unbatched\": {},\n",
            "    \"armed_recorder\": {},\n",
            "    \"armed_sampled\": {}\n",
            "  }},\n",
            "  \"armed_recorder_spans\": {},\n",
            "  \"armed_recorder_overhead_pct\": {:.4},\n",
            "  \"armed_sampled_one_in\": 16,\n",
            "  \"armed_sampled_spans\": {},\n",
            "  \"armed_sampled_ops_sampled\": {},\n",
            "  \"armed_sampled_ops_skipped\": {},\n",
            "  \"phase_attribution\": {{\n",
            "    \"ops\": {},\n",
            "    \"op_p50_us\": {:.3},\n",
            "    \"op_p99_us\": {:.3},\n",
            "    \"critical_share_total_pct\": {:.2},\n",
            "    \"overlap_saved_us\": {:.3},\n",
            "    \"phases\": [\n      {}\n    ]\n",
            "  }},\n",
            "  \"speedup\": {:.4},\n",
            "  \"pipelined_speedup\": {:.4},\n",
            "  \"mn_sweep_message_rate\": {},\n",
            "  \"mn_sweep\": [\n    {}\n  ],\n",
            "  \"concurrency\": [\n    {}\n  ],\n",
            "  \"degraded\": [\n    {}\n  ],\n",
            "  \"local_tier\": {{\n",
            "    \"tier_capacity\": {},\n",
            "    \"tier_lease_ns\": {},\n",
            "    \"records\": {},\n",
            "    \"requests\": {},\n",
            "    \"points\": [\n      {}\n    ]\n",
            "  }},\n",
            "  \"resize_window\": {{\n",
            "    \"batched\": {},\n",
            "    \"unbatched\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        describe,
        config_fingerprint(&spec, capacity),
        requests,
        spec.record_count,
        capacity,
        mode_json(&pipelined),
        mode_json(&batched),
        mode_json(&unbatched),
        mode_json(&armed),
        mode_json(&sampled),
        armed_spans,
        armed_overhead * 100.0,
        sampled_obs.spans_recorded,
        sampled_obs.ops_sampled,
        sampled_obs.ops_skipped,
        attribution_table.ops,
        attribution_table.op_p50_us,
        attribution_table.op_p99_us,
        attribution_table.critical_share_total_pct,
        attribution_table.overlap_saved_us,
        attribution_table
            .rows
            .iter()
            .map(phase_row_json)
            .collect::<Vec<_>>()
            .join(",\n      "),
        speedup,
        pipelined_speedup,
        SWEEP_MESSAGE_RATE,
        sweep
            .iter()
            .map(sweep_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        concurrency
            .iter()
            .map(concurrency_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        degraded
            .iter()
            .map(degraded_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        TIER_CAPACITY,
        TIER_LEASE_NS,
        tier_spec_for(0.99).record_count,
        tier_spec_for(0.99).request_count,
        tier_points
            .iter()
            .map(tier_point_json)
            .collect::<Vec<_>>()
            .join(",\n      "),
        resize_json(&resize_batched),
        resize_json(&resize_unbatched),
    );
    std::fs::write("BENCH_ops.json", &json).expect("write BENCH_ops.json");
    println!("{json}");

    // Acceptance gates: behaviour parity, the batching win and the
    // pipelining win.
    assert_eq!(
        (batched.hits, batched.misses),
        (unbatched.hits, unbatched.misses),
        "hit/miss parity broken between batched and unbatched modes"
    );
    assert_eq!(
        (pipelined.hits, pipelined.misses, pipelined.evictions),
        (batched.hits, batched.misses, batched.evictions),
        "hit/miss/eviction parity broken between pipelined and batched modes"
    );
    assert!(
        speedup >= 1.3,
        "doorbell batching must deliver >=1.3x simulated ops/s, measured {speedup:.3}x"
    );
    assert!(
        pipelined_speedup >= 1.0,
        "async completion must not fall below the synchronous batch: {pipelined_speedup:.4}x"
    );
    // Striping gate: under a message-bound workload, simulated ops/s must
    // increase monotonically from 1 to 4 memory nodes, and the pipelined
    // path must reach at least the synchronous-batched ceiling at every
    // pool size (pipelining costs no messages).
    for pair in sweep[..3].windows(2) {
        assert!(
            pair[1].ops_per_sec > pair[0].ops_per_sec,
            "ops/s must increase {} -> {} memory nodes: {:.0} vs {:.0}",
            pair[0].nodes,
            pair[1].nodes,
            pair[0].ops_per_sec,
            pair[1].ops_per_sec
        );
    }
    for point in &sweep {
        assert!(
            point.ops_per_sec >= point.sync_batched_ops_per_sec * 0.999,
            "{} MN: pipelined ({:.0} ops/s) must be >= synchronous-batched ({:.0} ops/s)",
            point.nodes,
            point.ops_per_sec,
            point.sync_batched_ops_per_sec
        );
    }
    // Resize-window gates, in both batching modes: (a) the pumped drain
    // empties the node completely (and lookup READs leave it), and (b) the
    // migrated pool's message-bound ceiling is higher than the pre-resize
    // steady state — the bucket ranges really spread onto the joiner.
    for (name, r) in [
        ("batched", &resize_batched),
        ("unbatched", &resize_unbatched),
    ] {
        assert_eq!(
            r.drained_residual_bytes, 0,
            "{name}: drained node must reach zero resident object bytes"
        );
        assert!(
            r.grow_stripes > 0 && r.shrink_stripes > 0,
            "{name}: both resize phases must actually move stripes \
             (grow {}, shrink {})",
            r.grow_stripes,
            r.shrink_stripes
        );
        // >= 95% of READ messages on active nodes: only the (tiny, fixed)
        // history-shard counters still answer from the drained node; every
        // bucket and object READ has left it.
        assert!(
            r.drained_node_reads * 20 < r.total_reads,
            "{name}: drained node still serves {}/{} READs (must be < 5%)",
            r.drained_node_reads,
            r.total_reads
        );
        assert!(
            r.migrated_ops_per_sec > r.steady_ops_per_sec * 1.1,
            "{name}: migration must raise the message-bound ceiling: {:.0} -> {:.0}",
            r.steady_ops_per_sec,
            r.migrated_ops_per_sec
        );
    }
    // Concurrency gates: (a) aggregate simulated ops/s must be monotone
    // non-decreasing from 1 to 4 client threads — more clients on one
    // shared cache must scale until a shared resource saturates; (b) the
    // contention accounting identity holds on every point (each lock
    // acquire attempt either succeeded or was booked as a wait retry).
    for pair in concurrency[..3].windows(2) {
        assert!(
            pair[1].ops_per_sec >= pair[0].ops_per_sec,
            "aggregate ops/s must not drop {} -> {} threads: {:.0} vs {:.0}",
            pair[0].threads,
            pair[1].threads,
            pair[0].ops_per_sec,
            pair[1].ops_per_sec
        );
    }
    for point in &concurrency {
        assert_eq!(
            point.lock_acquire_attempts,
            point.lock_acquisitions + point.lock_wait_retries,
            "{} threads: contention accounting identity violated",
            point.threads
        );
    }
}
