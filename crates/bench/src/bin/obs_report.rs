//! Offline phase-level latency-attribution analyzer.
//!
//! Ingests the artifacts an armed `ops_bench --trace` run writes — the
//! Chrome-tracing JSON document and the companion Prometheus exposition
//! page — re-parses them with the hand-rolled reader in
//! [`ditto_bench::jsonv`] (no third-party parser in the tree), and prints:
//!
//! 1. the **critical-path attribution table** ([`ditto_dm::obs::attribution`]
//!    over the reconstructed spans): per-phase span counts, p50/p99 raw span
//!    durations, the share of serialized op time each phase owns, and which
//!    phase dominates the p99 tail;
//! 2. the **overlap savings** the pipelined data path hid (raw span time
//!    minus serialized time);
//! 3. an **event-rate table** of the instant markers in the trace;
//! 4. the **per-phase histogram quantiles** from the exposition page.
//!
//! Gates (process exits non-zero on violation): the trace must attribute at
//! least one op, per-phase critical shares must sum to ≤ 100% of elapsed op
//! time, the always-on data-path phases (translate/post/flight/poll/decode)
//! must appear on the exposition page with non-empty histograms, and every
//! *other* phase histogram is gated non-empty only if the page names it —
//! configuration-dependent phases (lock, evict, relocate, the local tier's
//! local_hit/revalidate) are legitimately absent when the feature that
//! feeds them never ran.
//!
//! ```text
//! cargo run --release -p ditto-bench --bin ops_bench -- --trace ditto_trace.json
//! cargo run --release -p ditto-bench --bin obs_report -- ditto_trace.json ditto_trace.prom
//! ```

use ditto_bench::jsonv::{self, Json};
use ditto_dm::obs::{attribution, Phase, Span};
use std::collections::BTreeMap;

/// Phases every armed get/set trace must exercise: the one-sided data path
/// itself.  All other phases are configuration-dependent — publish needs
/// Sets in the window, lock/evict need pressure, relocate needs a
/// migration, local_hit/revalidate need the compute-side local tier — and
/// are gated only when the exposition page actually names them.
const REQUIRED_PHASES: [Phase; 5] = [
    Phase::Translate,
    Phase::Post,
    Phase::Flight,
    Phase::Poll,
    Phase::Decode,
];

/// Reconstructs per-client span collections (and the instant-marker tally)
/// from a Chrome-tracing document emitted by
/// [`ditto_dm::obs::chrome_trace_json`].
#[allow(clippy::type_complexity)]
fn read_trace(label: &str, text: &str) -> (Vec<(u32, Vec<Span>)>, BTreeMap<String, u64>, f64) {
    let doc =
        jsonv::parse(text).unwrap_or_else(|e| panic!("{label}: trace is not valid JSON: {e}"));
    let Some(Json::Arr(entries)) = doc.get("traceEvents") else {
        panic!("{label}: missing traceEvents array");
    };
    let mut traces: BTreeMap<u32, Vec<Span>> = BTreeMap::new();
    let mut instants: BTreeMap<String, u64> = BTreeMap::new();
    let mut span_ts_max = 0f64;
    let mut span_ts_min = f64::INFINITY;
    for entry in entries {
        let ph = entry.get("ph").and_then(Json::as_str).unwrap_or("");
        match ph {
            "X" => {
                let name = entry.get("name").and_then(Json::as_str).expect("span name");
                let phase = Phase::from_name(name)
                    .unwrap_or_else(|| panic!("{label}: unknown phase {name:?}"));
                let ts = entry.get("ts").and_then(Json::as_f64).expect("ts");
                let dur = entry.get("dur").and_then(Json::as_f64).expect("dur");
                let tid = entry.get("tid").and_then(Json::as_f64).expect("tid") as u32;
                let op_id = entry
                    .get("args")
                    .and_then(|a| a.get("op"))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u64;
                // Timestamps are microseconds with 3 decimals: exact ns.
                let start_ns = (ts * 1_000.0).round() as u64;
                let end_ns = ((ts + dur) * 1_000.0).round() as u64;
                span_ts_min = span_ts_min.min(ts);
                span_ts_max = span_ts_max.max(ts + dur);
                traces.entry(tid).or_default().push(Span {
                    op_id,
                    phase,
                    start_ns,
                    end_ns,
                    detail: 0,
                });
            }
            "i" => {
                // Event names render as "KIND detail…": tally by kind.
                let name = entry.get("name").and_then(Json::as_str).unwrap_or("?");
                let kind = name.split_whitespace().next().unwrap_or("?").to_string();
                *instants.entry(kind).or_insert(0) += 1;
            }
            // Metadata rows ("M") carry no timing; trace_smoke gates them.
            _ => {}
        }
    }
    let window_s = if span_ts_min.is_finite() {
        (span_ts_max - span_ts_min) / 1e6
    } else {
        0.0
    };
    (traces.into_iter().collect(), instants, window_s)
}

/// One phase's summary scraped off the Prometheus exposition page.
#[derive(Debug, Default, Clone, Copy)]
struct PagePhase {
    count: u64,
    sum_s: f64,
    p50_s: f64,
    p99_s: f64,
}

/// Scrapes the `ditto_phase_latency_seconds` family from a text exposition
/// page into per-phase summaries.
fn read_exposition(label: &str, text: &str) -> BTreeMap<String, PagePhase> {
    let mut phases: BTreeMap<String, PagePhase> = BTreeMap::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("ditto_phase_latency_seconds") else {
            continue;
        };
        let (labels, value) = rest
            .split_once("} ")
            .unwrap_or_else(|| panic!("{label}: malformed metric line {line:?}"));
        let phase = labels
            .split_once("phase=\"")
            .and_then(|(_, p)| p.split('"').next())
            .unwrap_or_else(|| panic!("{label}: metric line without phase label: {line:?}"));
        assert!(
            Phase::from_name(phase).is_some(),
            "{label}: exposition names unknown phase {phase:?}"
        );
        let value: f64 = value
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("{label}: bad metric value {line:?}: {e}"));
        let entry = phases.entry(phase.to_string()).or_default();
        if rest.starts_with("_count") {
            entry.count = value as u64;
        } else if rest.starts_with("_sum") {
            entry.sum_s = value;
        } else if labels.contains("quantile=\"0.5\"") {
            entry.p50_s = value;
        } else if labels.contains("quantile=\"0.99\"") {
            entry.p99_s = value;
        }
    }
    phases
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, prom_path) = match args.as_slice() {
        [trace] => (trace.clone(), None),
        [trace, prom] => (trace.clone(), Some(prom.clone())),
        _ => {
            eprintln!("usage: obs_report TRACE.json [EXPOSITION.prom]");
            std::process::exit(2);
        }
    };

    let text = std::fs::read_to_string(&trace_path)
        .unwrap_or_else(|e| panic!("cannot read {trace_path}: {e}"));
    let (traces, instants, window_s) = read_trace(&trace_path, &text);
    let span_total: usize = traces.iter().map(|(_, s)| s.len()).sum();
    println!(
        "obs_report: {trace_path} — {span_total} spans on {} client(s), {:.3} ms window",
        traces.len(),
        window_s * 1e3
    );

    // Critical-path attribution: serialize the pipelined overlap and show
    // where op time actually goes, overall and in the p99 tail.
    let table = attribution(&traces);
    println!();
    print!("{}", table.format());
    println!(
        "raw span time {:.1} us, serialized {:.1} us -> the pipeline hid {:.1} us ({:.1}% of raw)",
        table.raw_ns as f64 / 1e3,
        table.critical_ns as f64 / 1e3,
        table.overlap_saved_ns() as f64 / 1e3,
        100.0 * table.overlap_saved_ns() as f64 / table.raw_ns.max(1) as f64,
    );
    assert!(table.ops > 0, "{trace_path}: trace attributes no ops");
    assert!(
        table.critical_ns <= table.elapsed_ns,
        "{trace_path}: serialized time exceeds elapsed op time ({} > {} ns)",
        table.critical_ns,
        table.elapsed_ns
    );

    // Event-rate table: instant markers per kind over the span window.
    if !instants.is_empty() {
        println!("\nevent                    count      per-second");
        for (kind, count) in &instants {
            let rate = *count as f64 / window_s.max(1e-9);
            println!("{kind:<22} {count:>8} {rate:>15.1}");
        }
    } else {
        println!("\n(no instant events in the trace window)");
    }

    // Exposition page: per-phase histogram quantiles, gated non-empty.
    if let Some(prom_path) = prom_path {
        let page = std::fs::read_to_string(&prom_path)
            .unwrap_or_else(|e| panic!("cannot read {prom_path}: {e}"));
        let phases = read_exposition(&prom_path, &page);
        assert!(
            !phases.is_empty(),
            "{prom_path}: armed run's exposition page names no phase histograms"
        );
        for phase in REQUIRED_PHASES {
            assert!(
                phases.get(phase.name()).is_some_and(|p| p.count > 0),
                "{prom_path}: always-on phase {:?} is missing or empty — the span → \
                 histogram plumbing broke",
                phase.name()
            );
        }
        println!("\nexposition phase histograms ({prom_path}):");
        println!("phase          count    p50_us    p99_us     mean_us");
        for (name, p) in &phases {
            // Configuration-dependent phases may be absent entirely, but a
            // histogram the page *names* must have fills behind it.
            assert!(
                p.count > 0,
                "{prom_path}: phase histogram {name:?} is named on the page but empty"
            );
            println!(
                "{name:<11} {:>8} {:>9.2} {:>9.2} {:>11.2}",
                p.count,
                p.p50_s * 1e6,
                p.p99_s * 1e6,
                p.sum_s * 1e6 / p.count as f64,
            );
        }
    }

    println!("\nobs_report: OK");
}
