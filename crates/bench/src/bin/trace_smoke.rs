//! Trace-smoke validator for the flight-recorder pipeline.
//!
//! Runs a short, seeded, pipelined window with the flight recorder armed,
//! then gates the whole observability path end to end:
//!
//! 1. **In-memory invariants** — zero span drops at this ring size, every
//!    pool op left at least one span (distinct op ids == the pool's op
//!    counter), per-phase record order is clock-ordered, and the pipelined
//!    lookup produced **≥ 2 overlapping `flight` spans on one client**
//!    (both bucket READs of a lookup share a doorbell, so their flight
//!    windows must overlap — the signature of the posted-WQE data path).
//! 2. **Emitted document** — the Chrome-tracing JSON written by
//!    [`ditto_dm::obs::chrome_trace_json`] re-parses with the hand-rolled
//!    JSON reader in [`ditto_bench::jsonv`] (no third-party parser in the
//!    tree), carries exactly one complete event per span and one instant
//!    per log event, keeps per-client `flight` spans timestamp-ordered,
//!    and leads with the Perfetto row-label metadata (`"ph":"M"`
//!    process/thread names) so trace viewers label rows `client-<id>`.
//!
//! ```text
//! cargo run --release -p ditto-bench --bin trace_smoke
//! cargo run --release -p ditto-bench --bin trace_smoke -- TRACE.json …
//! ```
//!
//! With file arguments, each named trace (e.g. the artifact `ops_bench
//! --trace` wrote) is additionally parsed and gated on the same
//! document-level invariants.  Exits non-zero on any violation.

use ditto_bench::jsonv::{self, Json};
use ditto_core::{DittoCache, DittoConfig};
use ditto_dm::obs::{chrome_trace_json, Phase, Span};
use ditto_dm::DmConfig;
use ditto_workloads::{YcsbSpec, YcsbWorkload};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Document-level gates (shared by the self-run and file arguments)
// ---------------------------------------------------------------------

/// Parses `text` as a Chrome trace and gates the document invariants.
/// Returns (complete events, instant events, overlapping-flight-pair
/// count, metadata records) for the caller's own assertions.
fn validate_trace_document(label: &str, text: &str) -> (usize, usize, usize, usize) {
    let doc = jsonv::parse(text)
        .unwrap_or_else(|e| panic!("{label}: emitted trace is not valid JSON: {e}"));
    let events = doc
        .get("traceEvents")
        .unwrap_or_else(|| panic!("{label}: missing traceEvents"));
    let Json::Arr(entries) = events else {
        panic!("{label}: traceEvents is not an array");
    };
    let mut complete = 0usize;
    let mut instants = 0usize;
    let mut metadata = 0usize;
    // Per-tid flight spans as (ts, ts+dur), in document order.
    let mut flights: BTreeMap<i64, Vec<(f64, f64)>> = BTreeMap::new();
    for entry in entries {
        let ph = entry.get("ph").and_then(Json::as_str).unwrap_or_else(|| {
            panic!("{label}: trace entry without ph: {entry:?}");
        });
        let tid = entry.get("tid").and_then(Json::as_f64).unwrap_or_else(|| {
            panic!("{label}: trace entry without tid");
        }) as i64;
        match ph {
            "X" => {
                complete += 1;
                let ts = entry.get("ts").and_then(Json::as_f64).expect("ts");
                let dur = entry.get("dur").and_then(Json::as_f64).expect("dur");
                assert!(dur >= 0.0, "{label}: negative span duration");
                let name = entry.get("name").and_then(Json::as_str).expect("name");
                if name == "flight" {
                    flights.entry(tid).or_default().push((ts, ts + dur));
                }
            }
            "i" => instants += 1,
            "M" => {
                // Perfetto row-label metadata: a process_name for the pool
                // and one thread_name per client, each naming itself in
                // args.name.
                metadata += 1;
                let kind = entry.get("name").and_then(Json::as_str).expect("name");
                assert!(
                    kind == "process_name" || kind == "thread_name",
                    "{label}: unknown metadata record {kind:?}"
                );
                let named = entry
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| panic!("{label}: metadata record without args.name"));
                assert!(!named.is_empty(), "{label}: empty metadata name");
            }
            other => panic!("{label}: unexpected phase {other:?}"),
        }
    }
    let mut overlapping_pairs = 0usize;
    for (tid, spans) in &flights {
        for pair in spans.windows(2) {
            // Flight spans of one client are recorded in ring order, so
            // their start timestamps must never regress…
            assert!(
                pair[1].0 >= pair[0].0,
                "{label}: client {tid} flight spans out of order: {pair:?}"
            );
            // …and two spans posted behind one doorbell share their start,
            // making them overlap (strictly, when both have width).
            if pair[0].0 < pair[1].1 && pair[1].0 < pair[0].1 {
                overlapping_pairs += 1;
            }
        }
    }
    (complete, instants, overlapping_pairs, metadata)
}

// ---------------------------------------------------------------------
// Seeded pipelined run
// ---------------------------------------------------------------------

fn main() {
    let spec = YcsbSpec {
        record_count: 2_000,
        request_count: 5_000,
        ..YcsbSpec::default()
    }
    .with_seed(42);
    let capacity = spec.record_count * 7 / 10;
    let dm = DmConfig::default().with_flight_recorder(1 << 18);
    let cache = DittoCache::with_dedicated_pool(DittoConfig::with_capacity(capacity), dm).unwrap();
    let mut client = cache.client();

    let mut value = vec![0u8; spec.value_size as usize];
    for key in 0..spec.record_count {
        value.fill(key as u8);
        client.set(&key.to_le_bytes(), &value);
    }
    client.dm().publish_clock();
    cache.pool().reset_stats();
    client.dm().clear_flight_recorder();
    let obs_before = cache.pool().stats().obs();

    let mut value_buf = Vec::with_capacity(spec.value_size as usize);
    for request in spec.run_requests(YcsbWorkload::C) {
        let key = request.key_bytes();
        if !client.get_into(&key, &mut value_buf) {
            value.fill(request.key as u8);
            client.set(&key, &value);
        }
    }
    client.flush();

    let ops = cache.pool().stats().ops();
    let obs = cache.pool().stats().obs().delta(&obs_before);
    let spans: Vec<Span> = client.dm().flight_spans();
    let events = cache.pool().events_snapshot();
    eprintln!(
        "trace_smoke: {ops} ops, {} spans ({} dropped), {} events",
        spans.len(),
        obs.spans_dropped,
        events.len()
    );

    // Gate 1: the ring was sized for the window — nothing dropped, and the
    // recorder view is complete.
    assert_eq!(obs.spans_dropped, 0, "ring too small for the smoke window");
    assert_eq!(
        spans.len() as u64,
        obs.spans_recorded,
        "recorder/stats span tally diverged"
    );

    // Gate 2: every pool op left at least one span, and no spans invented
    // ops — distinct op ids must match the pool's op counter exactly.
    let mut op_ids: Vec<u64> = spans.iter().map(|s| s.op_id).collect();
    op_ids.sort_unstable();
    op_ids.dedup();
    assert_eq!(
        op_ids.len() as u64,
        ops,
        "distinct op ids in the flight recorder must equal the pool's op count"
    );

    // Gate 3: record order within each phase follows the simulated clock.
    let mut last_start: BTreeMap<Phase, u64> = BTreeMap::new();
    for span in &spans {
        let last = last_start.entry(span.phase).or_insert(0);
        assert!(
            span.start_ns >= *last,
            "{:?} span start regressed: {} after {}",
            span.phase,
            span.start_ns,
            last
        );
        *last = span.start_ns;
        assert!(span.end_ns >= span.start_ns, "span ends before it starts");
    }

    // Gate 4: the pipelined data path visibly overlapped verbs — at least
    // two flight spans of this client share wire time.
    let flight: Vec<&Span> = spans.iter().filter(|s| s.phase == Phase::Flight).collect();
    let overlapping = flight
        .windows(2)
        .filter(|pair| pair[0].overlaps(pair[1]))
        .count();
    assert!(
        overlapping >= 1,
        "pipelined lookups must produce >=2 overlapping flight spans on one client \
         ({} flight spans, none overlapping)",
        flight.len()
    );

    // Gate 5: the emitted Chrome document re-parses and preserves counts,
    // including the Perfetto row-label metadata (one process_name plus one
    // thread_name per client).
    let json = chrome_trace_json(&[(client.dm().client_id(), spans.clone())], &events);
    let (complete, instants, file_overlaps, metadata) = validate_trace_document("self-run", &json);
    assert_eq!(complete, spans.len(), "one complete event per span");
    assert_eq!(instants, events.len(), "one instant per log event");
    assert_eq!(
        metadata, 2,
        "one process_name plus one thread_name for the single client"
    );
    assert!(
        file_overlaps >= 1,
        "the emitted document must preserve the overlapping flight spans"
    );
    let out = std::env::temp_dir().join("ditto_trace_smoke.json");
    std::fs::write(&out, &json).expect("write smoke trace");
    eprintln!(
        "trace_smoke: OK — {complete} spans, {instants} events, {file_overlaps} overlapping \
         flight pairs ({})",
        out.display()
    );

    // File arguments: validate existing trace artifacts the same way.
    for path in std::env::args().skip(1) {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let (complete, instants, overlaps, metadata) = validate_trace_document(&path, &text);
        assert!(complete > 0, "{path}: trace holds no spans");
        assert!(
            metadata >= 2,
            "{path}: expected process_name + thread_name metadata records"
        );
        assert!(
            overlaps >= 1,
            "{path}: expected >=2 overlapping flight spans on one client"
        );
        eprintln!(
            "trace_smoke: {path} OK — {complete} spans, {instants} events, {overlaps} \
             overlapping flight pairs, {metadata} metadata records"
        );
    }
}
