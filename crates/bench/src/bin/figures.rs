//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ditto-bench --bin figures -- all
//! cargo run --release -p ditto-bench --bin figures -- fig14 fig16 tab3
//! cargo run --release -p ditto-bench --bin figures -- --scale 0.1 fig17
//! ```
//!
//! The `--scale` flag multiplies workload sizes (default 0.03); absolute
//! numbers are not expected to match the paper's testbed, but the relative
//! ordering and crossover points are (see EXPERIMENTS.md).

use ditto_algorithms::registry;
use ditto_baselines::{MonolithicConfig, RedisLikeCluster, ScaleEvent};
use ditto_bench::{load_phase, measured_phase, print_row, run_trace, SystemKind, SystemUnderTest};
use ditto_core::sim::{simulate_hit_rate, SimConfig};
use ditto_core::{DittoCache, DittoConfig};
use ditto_dm::{run_clients, DmConfig};
use ditto_workloads::corpus::{self, CorpusScale};
use ditto_workloads::mixer::{interleave_clients, mix_applications};
use ditto_workloads::traces::{lfu_friendly, lru_friendly, TraceSpec};
use ditto_workloads::{changing_workload, replay, ReplayOptions, YcsbSpec, YcsbWorkload};

struct Opts {
    scale: f64,
    figures: Vec<String>,
}

fn parse_args() -> Opts {
    let mut scale = 0.03;
    let mut figures = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number");
            }
            other => figures.push(other.to_string()),
        }
    }
    if figures.is_empty() {
        figures.push("all".to_string());
    }
    Opts { scale, figures }
}

fn main() {
    let opts = parse_args();
    let all = [
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig13", "fig14", "fig15", "fig16", "fig17",
        "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "corpus33",
        "pipeline", "tab3",
    ];
    let selected: Vec<&str> = if opts.figures.iter().any(|f| f == "all") {
        all.to_vec()
    } else {
        opts.figures.iter().map(String::as_str).collect()
    };
    for figure in selected {
        println!();
        println!("================ {figure} ================");
        match figure {
            "fig1" => fig1(),
            "fig2" => fig2(opts.scale),
            "fig3" => fig3(opts.scale),
            "fig4" => fig4(opts.scale),
            "fig5" => fig5(opts.scale),
            "fig13" => fig13(opts.scale),
            "fig14" => fig14(opts.scale),
            "fig15" => fig15(opts.scale),
            "fig16" => {
                fig16(opts.scale, true);
                fig16(opts.scale, false);
            }
            "fig17" => fig17(opts.scale),
            "fig18" => fig18(opts.scale),
            "corpus33" => corpus33(opts.scale),
            "pipeline" => pipeline(opts.scale),
            "fig19" => fig19(opts.scale),
            "fig20" => fig20(opts.scale),
            "fig21" => fig21(opts.scale),
            "fig22" => fig22(opts.scale),
            "fig23" => fig23(opts.scale),
            "fig24" => fig24(opts.scale),
            "fig25" => fig25(opts.scale),
            "tab3" => tab3(),
            other => println!("unknown figure id: {other}"),
        }
    }
}

/// Data-path drill-down: the same seeded YCSB-C trace through the three
/// completion modes — pipelined (posted WQEs + polled completions),
/// synchronous doorbell batches and sequential round trips.  Behaviour
/// (hits, misses, verbs) is identical across rows; only the charged
/// latency moves, which is the §4.2 client-centric claim in isolation.
fn pipeline(scale: f64) {
    let spec = ycsb_spec(scale);
    let capacity = spec.record_count * 7 / 10;
    println!("completion-mode drill-down (YCSB-C, identical verbs per row)");
    println!(
        "{:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "mode", "ops/s", "p50(us)", "p99(us)", "hits", "misses"
    );
    for (name, batching, async_completion) in [
        ("pipelined", true, true),
        ("batched", true, false),
        ("unbatched", false, false),
    ] {
        let config = DittoConfig::with_capacity(capacity)
            .with_doorbell_batching(batching)
            .with_async_completion(async_completion);
        let cache = DittoCache::with_dedicated_pool(config, DmConfig::default()).unwrap();
        let mut client = cache.client();
        let mut value = vec![0u8; spec.value_size as usize];
        for key in 0..spec.record_count {
            value.fill(key as u8);
            client.set(&key.to_le_bytes(), &value);
        }
        client.dm().publish_clock();
        cache.pool().reset_stats();
        client.dm().reset_clock();
        let baseline_ns = client.dm().now_ns();
        let mut buf = Vec::with_capacity(spec.value_size as usize);
        for request in spec.run_requests(YcsbWorkload::C) {
            let key = request.key_bytes();
            if !client.get_into(&key, &mut buf) {
                value.fill(request.key as u8);
                client.set(&key, &value);
            }
        }
        client.flush();
        let stats = cache.pool().stats();
        let snap = cache.stats().snapshot();
        let seconds = (client.dm().now_ns() - baseline_ns) as f64 / 1e9;
        println!(
            "{:>12} {:>12.0} {:>10.2} {:>10.2} {:>10} {:>10}",
            name,
            stats.ops() as f64 / seconds,
            stats.latency().median_ns() as f64 / 1_000.0,
            stats.latency().p99_ns() as f64 / 1_000.0,
            snap.hits,
            snap.misses,
        );
    }
    println!("(pipelined = posted WQEs, unsignalled writes/FAAs, CPU work overlapping flights)");
}

fn ycsb_spec(scale: f64) -> YcsbSpec {
    YcsbSpec {
        record_count: ((200_000.0 * scale) as u64).max(5_000),
        request_count: ((400_000.0 * scale) as u64).max(10_000),
        ..YcsbSpec::default()
    }
}

fn corpus_scale(scale: f64) -> CorpusScale {
    CorpusScale(scale)
}

/// Figure 1: the Redis-like cluster's throughput/latency while scaling
/// 32 → 64 → 32 nodes (migration delays every adjustment).
fn fig1() {
    let cluster = RedisLikeCluster::new(MonolithicConfig::default());
    let events = [
        ScaleEvent {
            at_seconds: 180.0,
            target_nodes: 64,
        },
        ScaleEvent {
            at_seconds: 900.0,
            target_nodes: 32,
        },
    ];
    println!("Redis-like cluster, YCSB-C, scale 32->64->32 nodes");
    println!(
        "{:>8} {:>7} {:>10} {:>10} {:>10}",
        "t(s)", "nodes", "migrating", "Mops", "p99(us)"
    );
    for p in cluster.scale_timeline(32, &events, 1_500.0, 60.0) {
        println!(
            "{:>8.0} {:>7} {:>10} {:>10.3} {:>10.0}",
            p.seconds, p.serving_nodes, p.migrating, p.throughput_mops, p.p99_us
        );
    }
    println!(
        "migration 32->64 takes {:.1} min (paper: 5.3 min); reclamation after 64->32 takes {:.1} min (paper: 5.6 min)",
        cluster.migration_seconds(32, 64) / 60.0,
        cluster.migration_seconds(64, 32) / 60.0
    );
}

/// Figure 2: the cost of maintaining caching data structures on DM.
fn fig2(scale: f64) {
    let spec = ycsb_spec(scale);
    let keys = spec.record_count;
    let per_client = (spec.request_count / 8).max(2_000) as usize;
    let systems = [SystemKind::Kvc, SystemKind::ShardLru, SystemKind::Kvs];

    println!("(a) single-client performance, read-only YCSB-C");
    for kind in systems {
        let sut = SystemUnderTest::build(kind, keys * 2, DmConfig::default());
        load_phase(&sut, 4, &spec.load_requests());
        let requests = spec.run_requests_seeded(YcsbWorkload::C, 1);
        let run = measured_phase(&sut, kind.name(), 1, ReplayOptions::default(), &|_| {
            requests[..per_client.min(requests.len())].to_vec()
        });
        print_row(
            kind.name(),
            &[
                ("Mops", run.report.throughput_mops),
                ("p50_us", run.report.p50_latency_us),
                ("p99_us", run.report.p99_latency_us),
                ("msgs/op", run.report.messages_per_op),
            ],
        );
    }

    println!("(b) multi-client throughput (Mops)");
    for kind in systems {
        let sut = SystemUnderTest::build(kind, keys * 2, DmConfig::default());
        load_phase(&sut, 8, &spec.load_requests());
        let mut values = Vec::new();
        for clients in [1usize, 4, 8, 16, 32, 64] {
            let run = measured_phase(&sut, kind.name(), clients, ReplayOptions::default(), &|i| {
                let requests = spec.run_requests_seeded(YcsbWorkload::C, 100 + i as u64);
                requests[..(per_client / clients.max(1)).max(500).min(requests.len())].to_vec()
            });
            values.push((clients, run.report.throughput_mops));
        }
        print!("{:<12}", kind.name());
        for (clients, mops) in values {
            print!(" {clients}cl={mops:.3}");
        }
        println!();
    }
}

/// Figure 3: hit rates of LRU/LFU as the client split between an
/// LRU-friendly and an LFU-friendly application changes.
fn fig3(scale: f64) {
    let spec = TraceSpec::new(
        (40_000.0 * scale.sqrt() * 10.0) as u64,
        (600_000.0 * scale) as u64,
    )
    .with_seed(3);
    let lru_app = lru_friendly(&spec);
    let lfu_app = lfu_friendly(&TraceSpec { seed: 33, ..spec });
    let capacity = (spec.num_keys / 8).max(200) as usize;
    println!("hit rate vs. fraction of clients running the LRU-friendly application");
    println!("{:>12} {:>10} {:>10}", "lru-clients", "LRU", "LFU");
    for lru_clients in [0usize, 4, 8, 12, 16] {
        let mixed = mix_applications(
            &[
                (lru_app.clone(), lru_clients),
                (lfu_app.clone(), 16 - lru_clients),
            ],
            7,
        );
        let lru = simulate_hit_rate(&mixed, SimConfig::single(capacity, "lru")).unwrap();
        let lfu = simulate_hit_rate(&mixed, SimConfig::single(capacity, "lfu")).unwrap();
        println!(
            "{:>12} {:>10.4} {:>10.4}",
            format!("{lru_clients}/16"),
            lru,
            lfu
        );
    }
}

/// Figure 4: LRU vs LFU on the same workload across cache sizes.
fn fig4(scale: f64) {
    let trace = corpus::webmail(corpus_scale(scale));
    println!(
        "workload: {} ({} requests, footprint {})",
        trace.name,
        trace.len(),
        trace.footprint
    );
    println!("{:>14} {:>10} {:>10}", "cache(%fp)", "LRU", "LFU");
    for pct in [1.0, 2.0, 5.0, 10.0, 20.0, 40.0] {
        let capacity = ((trace.footprint as f64) * pct / 100.0).max(16.0) as usize;
        let lru = simulate_hit_rate(&trace.requests, SimConfig::single(capacity, "lru")).unwrap();
        let lfu = simulate_hit_rate(&trace.requests, SimConfig::single(capacity, "lfu")).unwrap();
        println!("{:>14} {:>10.4} {:>10.4}", format!("{pct}%"), lru, lfu);
    }
}

/// Figure 5: effect of concurrent clients on hit rates across the corpus.
fn fig5(scale: f64) {
    let corpus = corpus::corpus_74(corpus_scale(scale));
    let client_counts = [1usize, 8, 64];
    let mut changes_lru = Vec::new();
    let mut changes_lfu = Vec::new();
    let mut best_changed = 0usize;
    for trace in &corpus {
        let capacity = (trace.footprint / 10).max(64) as usize;
        let mut rates_lru = Vec::new();
        let mut rates_lfu = Vec::new();
        for &clients in &client_counts {
            let reordered = interleave_clients(&trace.requests, clients, 5);
            rates_lru
                .push(simulate_hit_rate(&reordered, SimConfig::single(capacity, "lru")).unwrap());
            rates_lfu
                .push(simulate_hit_rate(&reordered, SimConfig::single(capacity, "lfu")).unwrap());
        }
        let change = |rates: &[f64]| {
            let max = rates.iter().cloned().fold(f64::MIN, f64::max);
            let min = rates.iter().cloned().fold(f64::MAX, f64::min);
            if max > 0.0 {
                (max - min) / max
            } else {
                0.0
            }
        };
        changes_lru.push(change(&rates_lru));
        changes_lfu.push(change(&rates_lfu));
        let best_at = |i: usize| rates_lru[i] > rates_lfu[i];
        if best_at(0) != best_at(client_counts.len() - 1) {
            best_changed += 1;
        }
    }
    changes_lru.sort_by(f64::total_cmp);
    changes_lfu.sort_by(f64::total_cmp);
    println!("(a) CDF of relative hit-rate change when varying clients {client_counts:?}");
    println!("{:>12} {:>10} {:>10}", "percentile", "LRU", "LFU");
    for pct in [10, 25, 50, 75, 90] {
        let idx = (pct * changes_lru.len() / 100).min(changes_lru.len() - 1);
        println!(
            "{:>12} {:>10.4} {:>10.4}",
            format!("p{pct}"),
            changes_lru[idx],
            changes_lfu[idx]
        );
    }
    println!(
        "best algorithm changes with client count on {} of {} workloads",
        best_changed,
        corpus.len()
    );
    println!("(b) example trace: hit rate vs clients");
    let example = &corpus[1];
    let capacity = (example.footprint / 10).max(64) as usize;
    println!("{:>10} {:>10} {:>10}", "clients", "LRU", "LFU");
    for clients in [1usize, 4, 16, 64, 256] {
        let reordered = interleave_clients(&example.requests, clients, 5);
        let lru = simulate_hit_rate(&reordered, SimConfig::single(capacity, "lru")).unwrap();
        let lfu = simulate_hit_rate(&reordered, SimConfig::single(capacity, "lfu")).unwrap();
        println!("{clients:>10} {lru:>10.4} {lfu:>10.4}");
    }
}

/// Figure 13: Ditto's throughput while compute and memory are adjusted.
fn fig13(scale: f64) {
    let spec = ycsb_spec(scale);
    let capacity = spec.record_count;
    let sut = SystemUnderTest::build(SystemKind::Ditto, capacity, DmConfig::default());
    load_phase(&sut, 8, &spec.load_requests());
    println!("phase-by-phase steady state (resource adjustments take effect immediately)");
    println!(
        "{:>26} {:>10} {:>10} {:>10}",
        "phase", "Mops", "p50(us)", "p99(us)"
    );
    let phases = [
        ("8 client cores", 8usize),
        ("16 client cores (+8)", 16),
        ("8 client cores (-8)", 8),
    ];
    for (name, clients) in phases {
        let run = measured_phase(&sut, "Ditto", clients, ReplayOptions::default(), &|i| {
            let requests = spec.run_requests_seeded(YcsbWorkload::C, 7 + i as u64);
            requests[..(4_000).min(requests.len())].to_vec()
        });
        println!(
            "{:>26} {:>10.3} {:>10.1} {:>10.1}",
            name, run.report.throughput_mops, run.report.p50_latency_us, run.report.p99_latency_us
        );
    }
    println!(
        "(memory expansion needs no migration: cached data stays in place, hit rate only grows)"
    );
}

/// Figure 14: YCSB throughput and p99 latency vs number of clients.
fn fig14(scale: f64) {
    let spec = ycsb_spec(scale);
    let capacity = spec.record_count * 2;
    let client_counts = [1usize, 4, 8, 16, 32];
    for workload in YcsbWorkload::all() {
        println!("--- {} ---", workload.name());
        for kind in [SystemKind::ShardLru, SystemKind::CmLru, SystemKind::Ditto] {
            let sut = SystemUnderTest::build(kind, capacity, DmConfig::default());
            load_phase(&sut, 8, &spec.load_requests());
            print!("{:<12}", kind.name());
            for &clients in &client_counts {
                let run =
                    measured_phase(&sut, kind.name(), clients, ReplayOptions::default(), &|i| {
                        let requests = spec.run_requests_seeded(workload, 31 + i as u64);
                        requests[..(2_000).min(requests.len())].to_vec()
                    });
                print!(
                    " {}cl={:.3}Mops/{:.0}us",
                    clients, run.report.throughput_mops, run.report.p99_latency_us
                );
            }
            println!();
        }
    }
}

/// Figure 15: throughput vs number of memory-node CPU cores.
fn fig15(scale: f64) {
    let spec = ycsb_spec(scale);
    let capacity = spec.record_count * 2;
    let clients = 16usize;
    let redis = RedisLikeCluster::new(MonolithicConfig::default());
    for workload in [YcsbWorkload::A, YcsbWorkload::C] {
        println!("--- {} ({} clients) ---", workload.name(), clients);
        println!(
            "{:>10} {:>12} {:>12} {:>12}",
            "MN cores", "Ditto", "CM-LRU", "Redis(model)"
        );
        for cores in [1u32, 2, 4, 8, 16, 32] {
            let dm = DmConfig::default().with_mn_cores(cores);
            let mut row = Vec::new();
            for kind in [SystemKind::Ditto, SystemKind::CmLru] {
                let sut = SystemUnderTest::build(kind, capacity, dm.clone());
                load_phase(&sut, 8, &spec.load_requests());
                let run =
                    measured_phase(&sut, kind.name(), clients, ReplayOptions::default(), &|i| {
                        let requests = spec.run_requests_seeded(workload, 77 + i as u64);
                        requests[..(2_000).min(requests.len())].to_vec()
                    });
                row.push(run.report.throughput_mops);
            }
            // The Redis model serves each shard with one core.
            let redis_mops = redis
                .steady_throughput_mops(cores)
                .min(cores as f64 * redis.config().per_core_ops / 1e6);
            println!(
                "{:>10} {:>12.3} {:>12.3} {:>12.3}",
                cores, row[0], row[1], redis_mops
            );
        }
    }
}

/// Figure 16: penalised throughput and hit rate on the five real-world
/// workload stand-ins.
fn fig16(scale: f64, penalized: bool) {
    let workloads = corpus::figure16_workloads(corpus_scale(scale));
    let clients = 8usize;
    let systems = [
        SystemKind::CmLru,
        SystemKind::CmLfu,
        SystemKind::DittoLru,
        SystemKind::DittoLfu,
        SystemKind::Ditto,
    ];
    let opts = if penalized {
        ReplayOptions::penalized()
    } else {
        ReplayOptions::default()
    };
    println!(
        "{} on 5 real-world workload stand-ins (cache = 30% of footprint, {} clients)",
        if penalized {
            "penalised throughput (Mops)"
        } else {
            "hit rate"
        },
        clients
    );
    print!("{:<12}", "system");
    for w in &workloads {
        print!(" {:>18}", w.name);
    }
    println!();
    for kind in systems {
        print!("{:<12}", kind.name());
        for w in &workloads {
            let capacity = (w.footprint * 3 / 10).max(128);
            let run = run_trace(kind, capacity, clients, &w.requests, opts);
            let value = if penalized {
                run.report.throughput_mops
            } else {
                run.hit_rate()
            };
            print!(" {value:>18.4}");
        }
        println!();
    }
}

/// RNIC budget for the elasticity figures: low enough that a single memory
/// node is message-bound at the figure's client count.
const ELASTIC_MESSAGE_RATE: u64 = 100_000;

/// Loads every record into `cache` over `clients` threads (warm-up for the
/// elasticity windows).
fn elastic_load(cache: &DittoCache, spec: &YcsbSpec, clients: usize) {
    run_clients(cache.pool(), clients, |ctx| {
        let mut client = cache.client();
        replay(
            &mut client,
            spec.load_shard(ctx.index, ctx.total),
            ReplayOptions::default(),
        );
    });
}

/// One measured window of a YCSB-C replay (with cache-aside fills) over
/// `clients` client threads; returns `(Mops, hottest-node message share)`.
fn elastic_window(
    cache: &DittoCache,
    spec: &YcsbSpec,
    workload: YcsbWorkload,
    clients: usize,
    seed: u64,
) -> (f64, f64, ditto_dm::stats::Bottleneck) {
    let (report, _) = run_clients(cache.pool(), clients, |ctx| {
        let mut client = cache.client();
        let requests = spec.run_requests_seeded(workload, seed + ctx.index as u64);
        let per_client = (requests.len() / ctx.total).min(4_000);
        replay(
            &mut client,
            requests[..per_client].iter().copied(),
            ReplayOptions::default(),
        );
        client.flush();
    });
    let total: u64 = report.node_messages.iter().sum::<u64>().max(1);
    let max = report.node_messages.iter().copied().max().unwrap_or(0);
    (
        report.throughput_mops,
        max as f64 / total as f64,
        report.bottleneck,
    )
}

/// Figure 17: elasticity of the throughput ceiling — simulated ops/s vs
/// pool size under a message-bound RNIC budget.  With the hash table,
/// history shards and segments striped by the topology layer, the hottest
/// NIC carries `~1/n` of the messages and throughput scales with the pool.
fn fig17(scale: f64) {
    let spec = ycsb_spec(scale);
    let capacity = spec.record_count;
    let clients = 8usize;
    println!(
        "YCSB-C, {} clients, {} msg/s per NIC (message-bound at 1 MN)",
        clients, ELASTIC_MESSAGE_RATE
    );
    println!(
        "{:>8} {:>10} {:>16} {:>14}",
        "MNs", "Mops", "hottest-NIC(%)", "bottleneck"
    );
    for nodes in [1u16, 2, 4, 8] {
        let dm = DmConfig::default()
            .with_memory_nodes(nodes)
            .with_message_rate(ELASTIC_MESSAGE_RATE);
        let cache = DittoCache::with_dedicated_pool(DittoConfig::with_capacity(capacity), dm)
            .expect("cache construction");
        elastic_load(&cache, &spec, clients);
        let (mops, hottest, bottleneck) =
            elastic_window(&cache, &spec, YcsbWorkload::C, clients, 17);
        println!(
            "{nodes:>8} {mops:>10.4} {:>16.1} {:>14}",
            hottest * 100.0,
            format!("{bottleneck:?}")
        );
    }
}

/// Figure 18: online elasticity — throughput while memory nodes are added
/// to and drained from a serving pool, with the bucket-range migration
/// protocol live-rebalancing the *existing* cache between measurement
/// windows.  The timeline shows the migration dip and recovery, the
/// hottest-NIC share falling as bucket ranges spread onto joiners, and a
/// drained node's resident bytes falling to zero — at which point the node
/// is decommissioned outright with `remove_node`.
fn fig18(scale: f64) {
    let spec = ycsb_spec(scale);
    // Capacity below the footprint so the run carries eviction pressure:
    // relocating objects onto the shrunken active set must evict, which is
    // the throughput dip the timeline is after.
    let capacity = spec.record_count * 6 / 10;
    let clients = 8usize;
    let dm = DmConfig::default()
        .with_memory_nodes(2)
        .with_message_rate(ELASTIC_MESSAGE_RATE);
    let cache = DittoCache::with_dedicated_pool(DittoConfig::with_capacity(capacity), dm)
        .expect("cache construction");
    elastic_load(&cache, &spec, clients);
    println!(
        "YCSB-A, {} clients, {} msg/s per NIC; pool resized online with bucket-range migration",
        clients, ELASTIC_MESSAGE_RATE
    );
    println!(
        "{:>30} {:>7} {:>10} {:>16} {:>14}",
        "phase", "epoch", "Mops", "hottest-NIC(%)", "mn3 res(KiB)"
    );
    let phase = |name: &str, seed: u64| {
        let (mops, hottest, _) = elastic_window(&cache, &spec, YcsbWorkload::A, clients, seed);
        let mn3 = if cache.pool().num_nodes() > 3 {
            cache.pool().resident_object_bytes(3) / 1024
        } else {
            0
        };
        println!(
            "{name:>30} {:>7} {mops:>10.4} {:>16.1} {mn3:>14}",
            cache.pool().resize_epoch(),
            hottest * 100.0
        );
    };
    phase("2 MNs (steady)", 180);
    cache.pool().add_node().expect("add node 2");
    cache.pool().add_node().expect("add node 3");
    phase("4 MNs (resize window)", 181);
    // Migrate the existing bucket ranges onto the joiners; lookup load
    // spreads immediately instead of waiting for churn.
    let grow = cache.pump_migration();
    phase("4 MNs (migrated)", 182);
    phase("4 MNs (steady)", 183);
    cache.pool().drain_node(3).expect("drain node 3");
    phase("3 MNs (node 3 draining)", 184);
    let shrink = cache.pump_migration();
    phase("3 MNs (node 3 empty)", 185);
    let residual = cache.pool().resident_object_bytes(3);
    println!(
        "grow: {} stripes / {} objects migrated; shrink: {} stripes / {} objects; node 3 residual {} B",
        grow.stripes_moved, grow.objects_relocated,
        shrink.stripes_moved, shrink.objects_relocated,
        residual
    );
    assert_eq!(residual, 0, "fig18 drain must empty node 3");
    cache
        .pool()
        .remove_node(3)
        .expect("drained-to-empty node must be removable");
    println!("(node 3 decommissioned: handle lookups now return DmError::NodeRemoved)");
}

/// Relative hit rates over the 33-workload corpus (box-plot data; the
/// adaptive-vs-best/worst comparison that used to be printed as fig18).
fn corpus33(scale: f64) {
    let corpus = corpus::corpus_33(corpus_scale(scale));
    let mut adaptive_rel = Vec::new();
    let mut best_rel = Vec::new();
    let mut worst_rel = Vec::new();
    for trace in &corpus {
        let capacity = (trace.footprint / 10).max(64) as usize;
        let baseline =
            simulate_hit_rate(&trace.requests, SimConfig::single(capacity, "fifo")).unwrap();
        let lru = simulate_hit_rate(&trace.requests, SimConfig::single(capacity, "lru")).unwrap();
        let lfu = simulate_hit_rate(&trace.requests, SimConfig::single(capacity, "lfu")).unwrap();
        let adaptive = simulate_hit_rate(&trace.requests, SimConfig::adaptive(capacity)).unwrap();
        let norm = |x: f64| if baseline > 0.0 { x / baseline } else { 1.0 };
        adaptive_rel.push(norm(adaptive));
        best_rel.push(norm(lru.max(lfu)));
        worst_rel.push(norm(lru.min(lfu)));
    }
    let quartiles = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        let q = |p: f64| v[((v.len() - 1) as f64 * p) as usize];
        (q(0.0), q(0.25), q(0.5), q(0.75), q(1.0))
    };
    println!(
        "relative hit rate (normalised to FIFO eviction) over {} workloads",
        corpus.len()
    );
    println!(
        "{:>22} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "series", "min", "q1", "median", "q3", "max"
    );
    for (name, values) in [
        ("max(Ditto-LRU,LFU)", best_rel),
        ("Ditto (adaptive)", adaptive_rel),
        ("min(Ditto-LRU,LFU)", worst_rel),
    ] {
        let (min, q1, med, q3, max) = quartiles(values);
        println!("{name:>22} {min:>8.3} {q1:>8.3} {med:>8.3} {q3:>8.3} {max:>8.3}");
    }
}

/// Figure 19: the phase-changing workload.
fn fig19(scale: f64) {
    let spec =
        TraceSpec::new((30_000.0 * scale * 33.0) as u64, (800_000.0 * scale) as u64).with_seed(19);
    let trace = changing_workload(&spec, 4);
    let footprint = ditto_workloads::traces::footprint(&trace);
    let capacity = (footprint * 3 / 10).max(128);
    let clients = 8;
    println!(
        "4-phase LRU/LFU-switching workload ({} requests, footprint {footprint}, cache {capacity})",
        trace.len()
    );
    println!(
        "{:<12} {:>16} {:>10}",
        "system", "penalised Mops", "hit rate"
    );
    for kind in [
        SystemKind::CmLru,
        SystemKind::CmLfu,
        SystemKind::DittoLru,
        SystemKind::DittoLfu,
        SystemKind::Ditto,
    ] {
        let run = run_trace(kind, capacity, clients, &trace, ReplayOptions::penalized());
        println!(
            "{:<12} {:>16.4} {:>10.4}",
            kind.name(),
            run.report.throughput_mops,
            run.hit_rate()
        );
    }
}

/// Figure 20: hit rate vs the proportion of clients assigned to the
/// LRU-friendly vs LFU-friendly application.
fn fig20(scale: f64) {
    let keys = (8_000.0 * (scale * 33.0).max(1.0)) as u64;
    let reqs = (500_000.0 * scale) as u64;
    let lru_app = lru_friendly(&TraceSpec::new(keys, reqs).with_seed(20));
    let lfu_app = lfu_friendly(&TraceSpec::new(keys, reqs).with_seed(21));
    let capacity = (keys / 5).max(200) as usize;
    println!("relative hit rate (normalised to Ditto-LRU) vs LRU-application client share");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "lru share", "Ditto-LRU", "Ditto-LFU", "Ditto"
    );
    for lru_clients in [0usize, 2, 4, 6, 8] {
        let mixed = mix_applications(
            &[
                (lru_app.clone(), lru_clients),
                (lfu_app.clone(), 8 - lru_clients),
            ],
            3,
        );
        let lru = simulate_hit_rate(&mixed, SimConfig::single(capacity, "lru")).unwrap();
        let lfu = simulate_hit_rate(&mixed, SimConfig::single(capacity, "lfu")).unwrap();
        let adaptive = simulate_hit_rate(&mixed, SimConfig::adaptive(capacity)).unwrap();
        let norm = lru.max(1e-9);
        println!(
            "{:>10} {:>12.3} {:>12.3} {:>12.3}",
            format!("{}/8", lru_clients),
            1.0,
            lfu / norm,
            adaptive / norm
        );
    }
}

/// Figure 21: hit rate while the number of concurrent clients grows.
fn fig21(scale: f64) {
    let trace = corpus::webmail(corpus_scale(scale));
    let capacity = (trace.footprint / 10).max(128) as usize;
    println!("webmail stand-in, hit rate vs concurrent clients (normalised to Ditto-LRU)");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "clients", "Ditto-LRU", "Ditto-LFU", "Ditto"
    );
    for clients in [1usize, 8, 32, 64, 128] {
        let reordered = interleave_clients(&trace.requests, clients, 9);
        let lru = simulate_hit_rate(&reordered, SimConfig::single(capacity, "lru")).unwrap();
        let lfu = simulate_hit_rate(&reordered, SimConfig::single(capacity, "lfu")).unwrap();
        let adaptive = simulate_hit_rate(&reordered, SimConfig::adaptive(capacity)).unwrap();
        let norm = lru.max(1e-9);
        println!(
            "{:>10} {:>12.3} {:>12.3} {:>12.3}",
            clients,
            1.0,
            lfu / norm,
            adaptive / norm
        );
    }
}

/// Figure 22: hit rate while the cache (memory) size changes.
fn fig22(scale: f64) {
    let trace = corpus::webmail(corpus_scale(scale));
    println!("webmail stand-in, hit rate vs cache size");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "cache(%fp)", "Ditto-LRU", "Ditto-LFU", "Ditto"
    );
    for pct in [5.0, 10.0, 20.0, 30.0, 50.0] {
        let capacity = ((trace.footprint as f64) * pct / 100.0).max(32.0) as usize;
        let lru = simulate_hit_rate(&trace.requests, SimConfig::single(capacity, "lru")).unwrap();
        let lfu = simulate_hit_rate(&trace.requests, SimConfig::single(capacity, "lfu")).unwrap();
        let adaptive = simulate_hit_rate(&trace.requests, SimConfig::adaptive(capacity)).unwrap();
        println!(
            "{:>12} {lru:>12.4} {lfu:>12.4} {adaptive:>12.4}",
            format!("{pct}%")
        );
    }
}

/// Figure 23: throughput and hit rate of the 12 integrated algorithms.
fn fig23(scale: f64) {
    let trace = corpus::webmail(corpus_scale(scale));
    let capacity = (trace.footprint / 10).max(128);
    let clients = 4;
    println!(
        "webmail stand-in, {} requests, cache {capacity} objects",
        trace.len()
    );
    println!("{:<12} {:>10} {:>10}", "algorithm", "Mops", "hit rate");
    for alg in registry::all_algorithms() {
        let config = DittoConfig::single_algorithm(capacity, alg.name());
        let sut = SystemUnderTest::ditto_with_config(config, DmConfig::default());
        let run = measured_phase(&sut, alg.name(), clients, ReplayOptions::default(), &|i| {
            trace
                .requests
                .iter()
                .skip(i)
                .step_by(clients)
                .copied()
                .collect()
        });
        println!(
            "{:<12} {:>10.4} {:>10.4}",
            alg.name().to_uppercase(),
            run.report.throughput_mops,
            run.hit_rate()
        );
    }
}

/// Figure 24: contribution of each technique (ablation).
fn fig24(scale: f64) {
    let trace = corpus::webmail(corpus_scale(scale));
    let capacity = (trace.footprint / 10).max(128);
    let clients = 8;
    println!("webmail stand-in without miss penalty, {} clients", clients);
    println!("{:<34} {:>10} {:>10}", "configuration", "Mops", "msgs/op");
    type Ablation = (&'static str, Box<dyn Fn(&mut DittoConfig)>);
    let variants: Vec<Ablation> = vec![
        (
            "Ditto (all techniques)",
            Box::new(|_c: &mut DittoConfig| {}),
        ),
        (
            "- sample-friendly hash table",
            Box::new(|c: &mut DittoConfig| c.enable_sample_friendly_table = false),
        ),
        (
            "- lightweight history",
            Box::new(|c: &mut DittoConfig| {
                c.enable_sample_friendly_table = false;
                c.enable_lightweight_history = false;
            }),
        ),
        (
            "- lazy weight update",
            Box::new(|c: &mut DittoConfig| {
                c.enable_sample_friendly_table = false;
                c.enable_lightweight_history = false;
                c.enable_lazy_weight_update = false;
            }),
        ),
        (
            "- frequency-counter cache",
            Box::new(|c: &mut DittoConfig| {
                c.enable_sample_friendly_table = false;
                c.enable_lightweight_history = false;
                c.enable_lazy_weight_update = false;
                c.enable_fc_cache = false;
            }),
        ),
    ];
    for (name, tweak) in variants {
        let mut config = DittoConfig::with_capacity(capacity);
        tweak(&mut config);
        let sut = SystemUnderTest::ditto_with_config(config, DmConfig::default());
        let run = measured_phase(&sut, name, clients, ReplayOptions::default(), &|i| {
            trace
                .requests
                .iter()
                .skip(i)
                .step_by(clients)
                .copied()
                .collect()
        });
        println!(
            "{:<34} {:>10.4} {:>10.2}",
            name, run.report.throughput_mops, run.report.messages_per_op
        );
    }
}

/// Figure 25: throughput and p99 latency vs frequency-counter cache size.
fn fig25(scale: f64) {
    let spec = ycsb_spec(scale);
    let clients = 16usize;
    println!("YCSB-C, {} clients", clients);
    println!("{:>12} {:>10} {:>10}", "FC size(MB)", "Mops", "p99(us)");
    for mb in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let mut config = DittoConfig::with_capacity(spec.record_count * 2);
        if mb == 0.0 {
            config.enable_fc_cache = false;
        } else {
            config.fc_cache_mb = mb;
        }
        let sut = SystemUnderTest::ditto_with_config(config, DmConfig::default());
        load_phase(&sut, 8, &spec.load_requests());
        let run = measured_phase(&sut, "Ditto", clients, ReplayOptions::default(), &|i| {
            let requests = spec.run_requests_seeded(YcsbWorkload::C, 55 + i as u64);
            requests[..(3_000).min(requests.len())].to_vec()
        });
        println!(
            "{:>12} {:>10.4} {:>10.1}",
            mb, run.report.throughput_mops, run.report.p99_latency_us
        );
    }
}

/// Table 3: lines of code and access information per algorithm.
fn tab3() {
    println!("{:<12} {:>5}  access information used", "algorithm", "LOC");
    let table = registry::table3();
    for row in &table {
        println!("{:<12} {:>5}  {:?}", row.name, row.loc, row.info);
    }
    let avg: f64 = table.iter().map(|r| r.loc as f64).sum::<f64>() / table.len() as f64;
    println!("average LOC: {avg:.1} (paper: 12.5)");
}
