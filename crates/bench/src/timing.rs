//! Minimal wall-clock timing harness for the `harness = false` benches.
//!
//! The crates.io `criterion` dependency is unavailable offline; this module
//! provides the small subset the benches need — warm-up, repeated timed
//! runs and a mean/min/max report on stdout.

use std::time::Instant;

/// Times `f` over `samples` runs (after one warm-up run) and prints a
/// one-line report.  Returns the mean nanoseconds per run.
pub fn bench<R>(label: &str, samples: usize, mut f: impl FnMut() -> R) -> f64 {
    let samples = samples.max(1);
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed().as_nanos() as f64);
    }
    let mean = times.iter().sum::<f64>() / samples as f64;
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(0.0_f64, f64::max);
    println!(
        "{label:<40} mean {:>12} ns/iter  (min {:>12}, max {:>12}, n={samples})",
        fmt_thousands(mean),
        fmt_thousands(min),
        fmt_thousands(max),
    );
    mean
}

/// Times `iters` iterations of `f` inside one measured run and prints the
/// per-iteration cost.  Returns the mean nanoseconds per iteration.
pub fn bench_iters<R>(label: &str, iters: u64, mut f: impl FnMut(u64) -> R) -> f64 {
    let iters = iters.max(1);
    for i in 0..iters.min(100) {
        std::hint::black_box(f(i));
    }
    let start = Instant::now();
    for i in 0..iters {
        std::hint::black_box(f(i));
    }
    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    println!(
        "{label:<40} {:>12} ns/iter  (n={iters})",
        fmt_thousands(per_iter)
    );
    per_iter
}

fn fmt_thousands(v: f64) -> String {
    let v = v.round() as u64;
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_mean() {
        let mean = bench("noop", 3, || 1 + 1);
        assert!(mean >= 0.0);
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(fmt_thousands(1234567.0), "1,234,567");
        assert_eq!(fmt_thousands(999.0), "999");
    }
}
