//! Minimal JSON reader shared by the observability tooling.
//!
//! The repo deliberately vendors no third-party JSON parser; this is the
//! hand-rolled reader `trace_smoke` uses to re-parse the Chrome-tracing
//! documents [`ditto_dm::obs::chrome_trace_json`] emits, extracted here so
//! `obs_report` can ingest the same artifacts.  Validation-grade only: it
//! accepts exactly the JSON the exporters write (plus whitespace), keeps
//! object fields in document order, and reports errors as strings with a
//! byte offset.

/// A parsed JSON value, just rich enough to validate a trace document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object (first match; `None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing bytes are an error).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(byte) if byte < 0x80 => {
                    out.push(byte as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole sequence.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().ok_or("empty char")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents_in_order() {
        let doc = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true},"a":null}"#).unwrap();
        let Json::Obj(fields) = &doc else {
            panic!("not an object")
        };
        assert_eq!(fields.len(), 3, "duplicate keys survive in order");
        assert_eq!(
            doc.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-300.0)
            ])),
            "get returns the first match"
        );
        assert_eq!(
            doc.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\ny")
        );
        assert_eq!(
            doc.get("b").and_then(|b| b.get("d")),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_unicode_escapes() {
        let doc = parse(r#""café ✓""#).unwrap();
        assert_eq!(doc.as_str(), Some("café ✓"));
    }
}
