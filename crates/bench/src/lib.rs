//! Shared experiment harness for the figure and table reproductions.
//!
//! Every system under test is wrapped behind [`SystemUnderTest`] /
//! [`ClientUnderTest`] so each experiment can run Ditto and the baselines
//! through exactly the same multi-client replay loop and report the same
//! metrics (throughput from the DM resource model, hit rate, latency
//! percentiles).

use ditto_baselines::{
    CliqueMapCache, CliqueMapClient, CliqueMapConfig, ListVariant, LockedListCache,
    LockedListClient, LockedListConfig,
};
use ditto_core::{DittoCache, DittoClient, DittoConfig};
use ditto_dm::{run_clients, DmConfig, MemoryPool, RunReport};
use ditto_workloads::{replay, CacheBackend, ReplayOptions, ReplayStats, Request};
use serde::{Deserialize, Serialize};

pub mod jsonv;
pub mod timing;

/// The systems compared across the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemKind {
    /// Ditto with adaptive LRU+LFU experts.
    Ditto,
    /// Ditto restricted to a single LRU expert.
    DittoLru,
    /// Ditto restricted to a single LFU expert.
    DittoLfu,
    /// CliqueMap with server-side precise LRU.
    CmLru,
    /// CliqueMap with server-side precise LFU.
    CmLfu,
    /// Shard-LRU: 32 lock-protected LRU lists maintained by clients.
    ShardLru,
    /// KVC: a single lock-protected LRU list (Figure 2).
    Kvc,
    /// KVS: plain key-value store without caching structures (Figure 2).
    Kvs,
}

impl SystemKind {
    /// Display name used in figure rows.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Ditto => "Ditto",
            SystemKind::DittoLru => "Ditto-LRU",
            SystemKind::DittoLfu => "Ditto-LFU",
            SystemKind::CmLru => "CM-LRU",
            SystemKind::CmLfu => "CM-LFU",
            SystemKind::ShardLru => "Shard-LRU",
            SystemKind::Kvc => "KVC",
            SystemKind::Kvs => "KVS",
        }
    }
}

/// A deployed system (remote structures + shared state).
pub enum SystemUnderTest {
    /// Any Ditto configuration.
    Ditto(DittoCache),
    /// CliqueMap.
    CliqueMap(CliqueMapCache),
    /// Lock-based list caches (Shard-LRU / KVC / KVS).
    Locked(LockedListCache),
}

/// A per-thread client of a [`SystemUnderTest`].
pub enum ClientUnderTest {
    /// Ditto client (boxed: far larger than the other clients).
    Ditto(Box<DittoClient>),
    /// CliqueMap client.
    CliqueMap(CliqueMapClient),
    /// Lock-based list client.
    Locked(LockedListClient),
}

impl SystemUnderTest {
    /// Deploys `kind` with the given object capacity on a fresh pool derived
    /// from `dm`.
    pub fn build(kind: SystemKind, capacity_objects: u64, dm: DmConfig) -> Self {
        match kind {
            SystemKind::Ditto | SystemKind::DittoLru | SystemKind::DittoLfu => {
                let config = match kind {
                    SystemKind::Ditto => DittoConfig::with_capacity(capacity_objects),
                    SystemKind::DittoLru => DittoConfig::single_algorithm(capacity_objects, "lru"),
                    _ => DittoConfig::single_algorithm(capacity_objects, "lfu"),
                };
                SystemUnderTest::Ditto(
                    DittoCache::with_dedicated_pool(config, dm).expect("ditto cache"),
                )
            }
            SystemKind::CmLru | SystemKind::CmLfu => {
                let config = if kind == SystemKind::CmLru {
                    CliqueMapConfig::lru(capacity_objects)
                } else {
                    CliqueMapConfig::lfu(capacity_objects)
                };
                SystemUnderTest::CliqueMap(CliqueMapCache::new(MemoryPool::new(dm), config))
            }
            SystemKind::ShardLru => SystemUnderTest::Locked(LockedListCache::new(
                MemoryPool::new(dm),
                LockedListConfig::shard_lru(capacity_objects),
            )),
            SystemKind::Kvc => SystemUnderTest::Locked(LockedListCache::new(
                MemoryPool::new(dm),
                LockedListConfig::kvc(capacity_objects),
            )),
            SystemKind::Kvs => SystemUnderTest::Locked(LockedListCache::new(
                MemoryPool::new(dm),
                LockedListConfig {
                    variant: ListVariant::Kvs,
                    ..LockedListConfig::kvs()
                },
            )),
        }
    }

    /// Deploys a Ditto variant from an explicit configuration (used by the
    /// ablation and parameter-sweep figures).
    pub fn ditto_with_config(config: DittoConfig, dm: DmConfig) -> Self {
        SystemUnderTest::Ditto(DittoCache::with_dedicated_pool(config, dm).expect("ditto cache"))
    }

    /// The memory pool backing the system.
    pub fn pool(&self) -> &MemoryPool {
        match self {
            SystemUnderTest::Ditto(c) => c.pool(),
            SystemUnderTest::CliqueMap(c) => c.pool(),
            SystemUnderTest::Locked(c) => c.pool(),
        }
    }

    /// Opens a new per-thread client.
    pub fn client(&self) -> ClientUnderTest {
        match self {
            SystemUnderTest::Ditto(c) => ClientUnderTest::Ditto(Box::new(c.client())),
            SystemUnderTest::CliqueMap(c) => ClientUnderTest::CliqueMap(c.client()),
            SystemUnderTest::Locked(c) => ClientUnderTest::Locked(c.client()),
        }
    }

    /// Global expert weights (Ditto only).
    pub fn global_weights(&self) -> Option<Vec<f64>> {
        match self {
            SystemUnderTest::Ditto(c) => Some(c.global_weights()),
            _ => None,
        }
    }
}

impl ClientUnderTest {
    /// Flushes client-buffered state (frequency counters, weight penalties).
    pub fn finish(&mut self) {
        if let ClientUnderTest::Ditto(c) = self {
            c.flush();
        }
    }
}

impl CacheBackend for ClientUnderTest {
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        match self {
            ClientUnderTest::Ditto(c) => c.get(key),
            ClientUnderTest::CliqueMap(c) => c.get(key),
            ClientUnderTest::Locked(c) => c.get(key),
        }
    }

    fn set(&mut self, key: &[u8], value: &[u8]) {
        match self {
            ClientUnderTest::Ditto(c) => DittoClient::set(c, key, value),
            ClientUnderTest::CliqueMap(c) => c.set(key, value),
            ClientUnderTest::Locked(c) => c.set(key, value),
        }
    }

    fn miss_penalty(&mut self, us: u64) {
        match self {
            ClientUnderTest::Ditto(c) => CacheBackend::miss_penalty(&mut **c, us),
            ClientUnderTest::CliqueMap(c) => c.miss_penalty(us),
            ClientUnderTest::Locked(c) => c.miss_penalty(us),
        }
    }

    fn backend_name(&self) -> &str {
        match self {
            ClientUnderTest::Ditto(c) => c.backend_name(),
            ClientUnderTest::CliqueMap(c) => c.backend_name(),
            ClientUnderTest::Locked(c) => c.backend_name(),
        }
    }
}

/// Result of one measured run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasuredRun {
    /// System name.
    pub system: String,
    /// Number of client threads.
    pub clients: usize,
    /// Resource-model report (throughput, latency, bottleneck).
    pub report: RunReport,
    /// Hit/miss statistics aggregated over all clients.
    pub replay: ReplayStats,
}

impl MeasuredRun {
    /// Hit rate over `Get` requests.
    pub fn hit_rate(&self) -> f64 {
        self.replay.hit_rate()
    }
}

/// Pre-loads a system with requests distributed round-robin over `clients`
/// loader threads (not measured).
pub fn load_phase(sut: &SystemUnderTest, clients: usize, requests: &[Request]) {
    run_clients(sut.pool(), clients, |ctx| {
        let mut client = sut.client();
        let shard: Vec<Request> = requests
            .iter()
            .skip(ctx.index)
            .step_by(ctx.total)
            .copied()
            .collect();
        replay(&mut client, shard, ReplayOptions::default());
        client.finish();
    });
    sut.pool().reset_stats();
}

/// Runs a measured phase: `clients` threads each replay the request slice
/// returned by `per_client` and the aggregate report is returned.
pub fn measured_phase(
    sut: &SystemUnderTest,
    system_name: &str,
    clients: usize,
    opts: ReplayOptions,
    per_client: &(dyn Fn(usize) -> Vec<Request> + Sync),
) -> MeasuredRun {
    let (report, stats) = run_clients(sut.pool(), clients, |ctx| {
        let mut client = sut.client();
        let requests = per_client(ctx.index);
        let stats = replay(&mut client, requests, opts);
        client.finish();
        stats
    });
    let mut replay_total = ReplayStats::default();
    for s in &stats {
        replay_total.merge(s);
    }
    MeasuredRun {
        system: system_name.to_string(),
        clients,
        report,
        replay: replay_total,
    }
}

/// Convenience: replays a whole trace split across clients against a freshly
/// built system, returning the measured run (used by the trace figures).
pub fn run_trace(
    kind: SystemKind,
    capacity_objects: u64,
    clients: usize,
    trace: &[Request],
    opts: ReplayOptions,
) -> MeasuredRun {
    let sut = SystemUnderTest::build(kind, capacity_objects, DmConfig::default());
    measured_phase(&sut, kind.name(), clients, opts, &|index| {
        trace.iter().skip(index).step_by(clients).copied().collect()
    })
}

/// Formats a figure row: pads the label and prints `value` columns.
pub fn print_row(label: &str, values: &[(&str, f64)]) {
    print!("{label:<28}");
    for (name, value) in values {
        print!(" {name}={value:<10.4}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_build_and_serve() {
        for kind in [
            SystemKind::Ditto,
            SystemKind::DittoLru,
            SystemKind::CmLru,
            SystemKind::ShardLru,
            SystemKind::Kvs,
        ] {
            let sut = SystemUnderTest::build(kind, 2_000, DmConfig::small());
            let mut client = sut.client();
            client.set(b"k", b"v");
            assert_eq!(
                client.get(b"k").as_deref(),
                Some(&b"v"[..]),
                "{}",
                kind.name()
            );
            client.finish();
        }
    }

    #[test]
    fn measured_phase_reports_all_requests() {
        let sut = SystemUnderTest::build(SystemKind::Ditto, 2_000, DmConfig::default());
        let requests: Vec<Request> = (0..500u64).map(Request::get).collect();
        let run = measured_phase(&sut, "Ditto", 2, ReplayOptions::default(), &|i| {
            requests.iter().skip(i).step_by(2).copied().collect()
        });
        assert_eq!(run.replay.requests, 500);
        assert!(run.report.throughput_mops > 0.0);
    }

    #[test]
    fn run_trace_produces_hit_rates() {
        let trace: Vec<Request> = (0..2_000u64).map(|i| Request::get(i % 100)).collect();
        let run = run_trace(
            SystemKind::DittoLru,
            1_000,
            2,
            &trace,
            ReplayOptions::default(),
        );
        assert!(run.hit_rate() > 0.8, "hit rate {}", run.hit_rate());
    }
}
