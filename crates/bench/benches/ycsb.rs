//! End-to-end YCSB-C runs (Figure 14's core comparison) as a Criterion bench:
//! measures the real execution time of replaying a fixed request budget on
//! Ditto and the baselines with 8 client threads.

use criterion::{criterion_group, criterion_main, Criterion};
use ditto_bench::{load_phase, measured_phase, SystemKind, SystemUnderTest};
use ditto_dm::DmConfig;
use ditto_workloads::{ReplayOptions, YcsbSpec, YcsbWorkload};

fn bench_ycsb(c: &mut Criterion) {
    let spec = YcsbSpec {
        record_count: 10_000,
        request_count: 20_000,
        ..YcsbSpec::default()
    };
    let mut group = c.benchmark_group("ycsb_c_8clients");
    group.sample_size(10);
    for kind in [SystemKind::Ditto, SystemKind::CmLru, SystemKind::ShardLru] {
        let sut = SystemUnderTest::build(kind, spec.record_count * 2, DmConfig::default());
        load_phase(&sut, 8, &spec.load_requests());
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                measured_phase(&sut, kind.name(), 8, ReplayOptions::default(), &|i| {
                    let requests = spec.run_requests_seeded(YcsbWorkload::C, i as u64);
                    requests[..1_000].to_vec()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ycsb);
criterion_main!(benches);
