//! End-to-end YCSB-C runs (Figure 14's core comparison): measures the real
//! execution time of replaying a fixed request budget on Ditto and the
//! baselines with 8 client threads.

use ditto_bench::timing::bench;
use ditto_bench::{load_phase, measured_phase, SystemKind, SystemUnderTest};
use ditto_dm::DmConfig;
use ditto_workloads::{ReplayOptions, YcsbSpec, YcsbWorkload};

fn main() {
    let spec = YcsbSpec {
        record_count: 10_000,
        request_count: 20_000,
        ..YcsbSpec::default()
    };
    println!("ycsb_c_8clients");
    for kind in [SystemKind::Ditto, SystemKind::CmLru, SystemKind::ShardLru] {
        let sut = SystemUnderTest::build(kind, spec.record_count * 2, DmConfig::default());
        load_phase(&sut, 8, &spec.load_requests());
        bench(kind.name(), 10, || {
            measured_phase(&sut, kind.name(), 8, ReplayOptions::default(), &|i| {
                let requests = spec.run_requests_seeded(YcsbWorkload::C, i as u64);
                requests[..1_000].to_vec()
            })
        });
    }
}
