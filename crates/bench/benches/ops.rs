//! Micro-benchmarks of single `Get`/`Set` operations on the DM substrate for
//! Ditto and the baselines (real execution cost of the data path; the
//! simulated-time metrics are produced by the `figures` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use ditto_bench::{SystemKind, SystemUnderTest};
use ditto_dm::DmConfig;
use ditto_workloads::CacheBackend;

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_op");
    group.sample_size(20);
    for kind in [
        SystemKind::Ditto,
        SystemKind::DittoLru,
        SystemKind::CmLru,
        SystemKind::ShardLru,
        SystemKind::Kvs,
    ] {
        let sut = SystemUnderTest::build(kind, 20_000, DmConfig::default());
        let mut client = sut.client();
        for i in 0..5_000u64 {
            client.set(format!("key{i}").as_bytes(), &[7u8; 256]);
        }
        let mut cursor = 0u64;
        group.bench_function(format!("get/{}", kind.name()), |b| {
            b.iter(|| {
                cursor = (cursor + 1) % 5_000;
                client.get(format!("key{cursor}").as_bytes())
            })
        });
        group.bench_function(format!("set/{}", kind.name()), |b| {
            b.iter(|| {
                cursor = (cursor + 1) % 5_000;
                client.set(format!("key{cursor}").as_bytes(), &[9u8; 256]);
            })
        });
        client.finish();
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
