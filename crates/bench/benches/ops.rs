//! Micro-benchmarks of single `Get`/`Set` operations on the DM substrate for
//! Ditto and the baselines (real execution cost of the data path; the
//! simulated-time metrics are produced by the `ops_bench` binary).

use ditto_bench::timing::bench_iters;
use ditto_bench::{SystemKind, SystemUnderTest};
use ditto_dm::DmConfig;
use ditto_workloads::CacheBackend;

fn main() {
    println!("single_op");
    for kind in [
        SystemKind::Ditto,
        SystemKind::DittoLru,
        SystemKind::CmLru,
        SystemKind::ShardLru,
        SystemKind::Kvs,
    ] {
        let sut = SystemUnderTest::build(kind, 20_000, DmConfig::default());
        let mut client = sut.client();
        for i in 0..5_000u64 {
            client.set(format!("key{i}").as_bytes(), &[7u8; 256]);
        }
        bench_iters(&format!("get/{}", kind.name()), 20_000, |i| {
            client.get(format!("key{}", i % 5_000).as_bytes())
        });
        bench_iters(&format!("set/{}", kind.name()), 20_000, |i| {
            client.set(format!("key{}", i % 5_000).as_bytes(), &[9u8; 256]);
        });
        client.finish();
    }
}
