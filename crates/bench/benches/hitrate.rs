//! Hit-rate simulation benchmarks: how fast the adaptive simulator replays
//! the workload stand-ins used by the adaptivity figures.

use criterion::{criterion_group, criterion_main, Criterion};
use ditto_core::sim::{simulate_hit_rate, SimConfig};
use ditto_workloads::corpus::{webmail, CorpusScale};

fn bench_hitrate(c: &mut Criterion) {
    let trace = webmail(CorpusScale(0.02));
    let capacity = (trace.footprint / 10).max(64) as usize;
    let mut group = c.benchmark_group("hit_rate_sim");
    group.sample_size(10);
    group.bench_function("lru", |b| {
        b.iter(|| simulate_hit_rate(&trace.requests, SimConfig::single(capacity, "lru")).unwrap())
    });
    group.bench_function("lfu", |b| {
        b.iter(|| simulate_hit_rate(&trace.requests, SimConfig::single(capacity, "lfu")).unwrap())
    });
    group.bench_function("adaptive_lru_lfu", |b| {
        b.iter(|| simulate_hit_rate(&trace.requests, SimConfig::adaptive(capacity)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_hitrate);
criterion_main!(benches);
