//! Hit-rate simulation benchmarks: how fast the adaptive simulator replays
//! the workload stand-ins used by the adaptivity figures.

use ditto_bench::timing::bench;
use ditto_core::sim::{simulate_hit_rate, SimConfig};
use ditto_workloads::corpus::{webmail, CorpusScale};

fn main() {
    let trace = webmail(CorpusScale(0.02));
    let capacity = (trace.footprint / 10).max(64) as usize;
    println!("hit_rate_sim ({} requests)", trace.requests.len());
    bench("lru", 10, || {
        simulate_hit_rate(&trace.requests, SimConfig::single(capacity, "lru")).unwrap()
    });
    bench("lfu", 10, || {
        simulate_hit_rate(&trace.requests, SimConfig::single(capacity, "lfu")).unwrap()
    });
    bench("adaptive_lru_lfu", 10, || {
        simulate_hit_rate(&trace.requests, SimConfig::adaptive(capacity)).unwrap()
    });
}
