//! YCSB core workloads A–D (Cooper et al., SoCC '10).

use crate::request::Request;
use crate::zipf::Zipfian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The YCSB core workload mixes used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum YcsbWorkload {
    /// 50 % GET / 50 % UPDATE.
    A,
    /// 95 % GET / 5 % UPDATE.
    B,
    /// 100 % GET.
    C,
    /// 95 % GET / 5 % INSERT.
    D,
}

impl YcsbWorkload {
    /// Fraction of `GET` requests in the mix.
    pub fn read_fraction(&self) -> f64 {
        match self {
            YcsbWorkload::A => 0.5,
            YcsbWorkload::B | YcsbWorkload::D => 0.95,
            YcsbWorkload::C => 1.0,
        }
    }

    /// Whether the write portion inserts new keys (D) or updates existing
    /// ones (A, B).
    pub fn writes_insert(&self) -> bool {
        matches!(self, YcsbWorkload::D)
    }

    /// The workload's conventional name ("YCSB-A", ...).
    pub fn name(&self) -> &'static str {
        match self {
            YcsbWorkload::A => "YCSB-A",
            YcsbWorkload::B => "YCSB-B",
            YcsbWorkload::C => "YCSB-C",
            YcsbWorkload::D => "YCSB-D",
        }
    }

    /// All four workloads, in paper order.
    pub fn all() -> [YcsbWorkload; 4] {
        [
            YcsbWorkload::A,
            YcsbWorkload::B,
            YcsbWorkload::C,
            YcsbWorkload::D,
        ]
    }
}

/// Parameters of a YCSB run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YcsbSpec {
    /// Number of pre-loaded records (the paper uses 10 million).
    pub record_count: u64,
    /// Number of requests to generate.
    pub request_count: u64,
    /// Value size in bytes (the paper uses 256-byte key-value pairs).
    pub value_size: u32,
    /// Zipfian skew parameter θ (the paper uses 0.99).
    pub theta: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for YcsbSpec {
    fn default() -> Self {
        YcsbSpec {
            record_count: 10_000_000,
            request_count: 10_000_000,
            value_size: crate::DEFAULT_VALUE_SIZE,
            theta: 0.99,
            seed: 42,
        }
    }
}

impl YcsbSpec {
    /// A scaled-down spec suitable for unit tests and quick experiments.
    pub fn small() -> Self {
        YcsbSpec {
            record_count: 10_000,
            request_count: 50_000,
            ..YcsbSpec::default()
        }
    }

    /// Sets the record count (builder style).
    pub fn with_records(mut self, n: u64) -> Self {
        self.record_count = n;
        self
    }

    /// Sets the request count (builder style).
    pub fn with_requests(mut self, n: u64) -> Self {
        self.request_count = n;
        self
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The load phase: one `INSERT` per record.
    pub fn load_requests(&self) -> Vec<Request> {
        (0..self.record_count)
            .map(|k| Request::insert(k).with_value_size(self.value_size))
            .collect()
    }

    /// Requests of the load phase restricted to client `index` of `total`
    /// (records are sharded across clients, as in the paper's setup).
    pub fn load_shard(&self, index: usize, total: usize) -> Vec<Request> {
        assert!(total > 0 && index < total);
        (0..self.record_count)
            .filter(|k| (*k as usize) % total == index)
            .map(|k| Request::insert(k).with_value_size(self.value_size))
            .collect()
    }

    /// Generates the run phase of `workload`.
    pub fn run_requests(&self, workload: YcsbWorkload) -> Vec<Request> {
        self.run_requests_seeded(workload, self.seed)
    }

    /// Generates the run phase with an explicit seed (one per client thread).
    pub fn run_requests_seeded(&self, workload: YcsbWorkload, seed: u64) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = Zipfian::new(self.record_count, self.theta);
        let mut next_insert_key = self.record_count;
        let read_fraction = workload.read_fraction();
        let mut requests = Vec::with_capacity(self.request_count as usize);
        for _ in 0..self.request_count {
            let key = zipf.sample_scrambled(&mut rng);
            let is_read = rng.gen::<f64>() < read_fraction;
            let req = if is_read {
                Request::get(key)
            } else if workload.writes_insert() {
                let k = next_insert_key;
                next_insert_key += 1;
                Request::insert(k)
            } else {
                Request::update(key)
            };
            requests.push(req.with_value_size(self.value_size));
        }
        requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Op;

    fn mix(workload: YcsbWorkload) -> (u64, u64, u64) {
        let spec = YcsbSpec::small();
        let reqs = spec.run_requests(workload);
        let gets = reqs.iter().filter(|r| r.op == Op::Get).count() as u64;
        let updates = reqs.iter().filter(|r| r.op == Op::Update).count() as u64;
        let inserts = reqs.iter().filter(|r| r.op == Op::Insert).count() as u64;
        (gets, updates, inserts)
    }

    #[test]
    fn workload_a_is_half_reads() {
        let (gets, updates, inserts) = mix(YcsbWorkload::A);
        let total = (gets + updates + inserts) as f64;
        assert!(inserts == 0);
        let read_share = gets as f64 / total;
        assert!((read_share - 0.5).abs() < 0.02, "read share {read_share}");
    }

    #[test]
    fn workload_c_is_read_only() {
        let (gets, updates, inserts) = mix(YcsbWorkload::C);
        assert_eq!(updates + inserts, 0);
        assert_eq!(gets, YcsbSpec::small().request_count);
    }

    #[test]
    fn workload_d_inserts_new_keys() {
        let spec = YcsbSpec::small();
        let reqs = spec.run_requests(YcsbWorkload::D);
        let max_insert_key = reqs
            .iter()
            .filter(|r| r.op == Op::Insert)
            .map(|r| r.key)
            .max()
            .unwrap();
        assert!(max_insert_key >= spec.record_count);
        let (gets, updates, _) = mix(YcsbWorkload::D);
        assert_eq!(updates, 0);
        assert!(gets > 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = YcsbSpec::small();
        let a = spec.run_requests_seeded(YcsbWorkload::B, 9);
        let b = spec.run_requests_seeded(YcsbWorkload::B, 9);
        let c = spec.run_requests_seeded(YcsbWorkload::B, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn requests_stay_in_keyspace() {
        let spec = YcsbSpec::small();
        for r in spec.run_requests(YcsbWorkload::C) {
            assert!(r.key < spec.record_count);
        }
    }

    #[test]
    fn load_shard_partitions_records() {
        let spec = YcsbSpec::small().with_records(100);
        let mut all: Vec<u64> = Vec::new();
        for i in 0..4 {
            all.extend(spec.load_shard(i, 4).iter().map(|r| r.key));
        }
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
