//! Workload generators and the replay harness for the Ditto evaluation.
//!
//! The paper evaluates Ditto with YCSB synthetic workloads and real-world
//! key-value traces (IBM Cloud Object Storage, CloudPhysics, Twitter and the
//! FIU *webmail* trace).  Those traces are proprietary or far too large to
//! ship, so this crate provides:
//!
//! * [`ycsb`] — faithful YCSB core workloads A–D with a Zipfian request
//!   distribution (θ = 0.99), the same mix the paper uses;
//! * [`traces`] — parameterised synthetic generators with controllable
//!   recency/frequency affinity (LRU-friendly drifting working sets,
//!   LFU-friendly skew with scan pollution, and mixtures);
//! * [`corpus`] — named stand-ins for each real-world trace family plus a
//!   74-workload corpus used by the motivation and adaptivity figures;
//! * [`changing`] — the 4-phase LRU↔LFU switching workload of Figure 19;
//! * [`mixer`] — client-interleaving utilities that reproduce how concurrent
//!   clients and application mixes reshape the global access pattern (§3.2);
//! * [`backend`] — the [`CacheBackend`] trait and [`replay`] driver shared by
//!   Ditto and all baselines so every system is measured identically.

pub mod backend;
pub mod changing;
pub mod corpus;
pub mod mixer;
pub mod request;
pub mod traces;
pub mod ycsb;
pub mod zipf;

pub use backend::{replay, CacheBackend, ReplayOptions, ReplayStats};
pub use changing::changing_workload;
pub use request::{Op, Request};
pub use ycsb::{YcsbSpec, YcsbWorkload};
pub use zipf::Zipfian;

/// Default value size used across the evaluation (the paper uses 256-byte
/// key-value pairs).
pub const DEFAULT_VALUE_SIZE: u32 = 256;
