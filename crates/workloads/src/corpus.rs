//! Named stand-ins for the paper's real-world traces and the 74-workload
//! corpus used by the motivation and adaptivity figures.
//!
//! The real traces (Table 2: IBM Cloud Object Storage, CloudPhysics block
//! I/O, three Twitter cache clusters and the FIU *webmail* trace) cannot be
//! redistributed here, so each family is replaced by a synthetic generator
//! whose recency/frequency structure matches the role the trace plays in the
//! evaluation (see DESIGN.md for the substitution rationale).  Every stand-in
//! is deterministic given its name.

use crate::request::Request;
use crate::traces::{lfu_friendly, lru_friendly, mixed, TraceSpec};
use serde::{Deserialize, Serialize};

/// A named workload: its request stream plus bookkeeping metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamedTrace {
    /// Workload name as used in the figures (e.g. `"webmail"`).
    pub name: String,
    /// The request stream.
    pub requests: Vec<Request>,
    /// Number of distinct keys (the footprint caches are sized against).
    pub footprint: u64,
}

impl NamedTrace {
    fn new(name: &str, requests: Vec<Request>) -> Self {
        let footprint = crate::traces::footprint(&requests);
        NamedTrace {
            name: name.to_string(),
            requests,
            footprint,
        }
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// Scale factor for trace lengths: `1.0` produces the default experiment
/// sizes (hundreds of thousands of requests); figure runs may scale up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusScale(pub f64);

impl Default for CorpusScale {
    fn default() -> Self {
        CorpusScale(1.0)
    }
}

impl CorpusScale {
    fn requests(&self, base: u64) -> u64 {
        ((base as f64) * self.0).max(10_000.0) as u64
    }
    fn keys(&self, base: u64) -> u64 {
        ((base as f64) * self.0.sqrt()).max(1_000.0) as u64
    }
}

/// FIU *webmail*: block I/O from web-based e-mail servers.  Mildly
/// LRU-leaning with enough frequency structure that the best algorithm flips
/// with cache size, which is what Figures 4, 20, 21 and 22 rely on.
pub fn webmail(scale: CorpusScale) -> NamedTrace {
    let spec = TraceSpec::new(scale.keys(60_000), scale.requests(800_000)).with_seed(101);
    NamedTrace::new("webmail", mixed(&spec, 0.55))
}

/// Twitter transient-cache cluster: short-lived, recency-dominated objects.
pub fn twitter_transient(scale: CorpusScale) -> NamedTrace {
    let spec = TraceSpec::new(scale.keys(80_000), scale.requests(1_000_000)).with_seed(202);
    NamedTrace::new("twitter-transient", lru_friendly(&spec))
}

/// Twitter storage cluster: a stable popularity skew, frequency-dominated.
pub fn twitter_storage(scale: CorpusScale) -> NamedTrace {
    let spec = TraceSpec::new(scale.keys(80_000), scale.requests(1_000_000)).with_seed(303);
    NamedTrace::new("twitter-storage", lfu_friendly(&spec))
}

/// Twitter compute cluster: a mixture of both behaviours.
pub fn twitter_compute(scale: CorpusScale) -> NamedTrace {
    let spec = TraceSpec::new(scale.keys(70_000), scale.requests(1_000_000)).with_seed(404);
    NamedTrace::new("twitter-compute", mixed(&spec, 0.4))
}

/// IBM Cloud Object Storage: large footprint, frequency-leaning with scans.
pub fn ibm_object_store(scale: CorpusScale) -> NamedTrace {
    let spec = TraceSpec::new(scale.keys(120_000), scale.requests(1_200_000)).with_seed(505);
    NamedTrace::new("ibm", mixed(&spec, 0.25))
}

/// CloudPhysics VM block I/O: strong temporal locality (LRU-leaning).
pub fn cloudphysics(scale: CorpusScale) -> NamedTrace {
    let spec = TraceSpec::new(scale.keys(90_000), scale.requests(1_200_000)).with_seed(606);
    NamedTrace::new("cloudphysics", mixed(&spec, 0.75))
}

/// The five workloads of Figures 16 and 17, in figure order.
pub fn figure16_workloads(scale: CorpusScale) -> Vec<NamedTrace> {
    vec![
        webmail(scale),
        twitter_transient(scale),
        twitter_storage(scale),
        twitter_compute(scale),
        ibm_object_store(scale),
    ]
}

/// The 74-workload corpus standing in for the Twitter + FIU traces used by
/// Figure 5 (hit-rate change under concurrency).
pub fn corpus_74(scale: CorpusScale) -> Vec<NamedTrace> {
    synthetic_corpus("corpus", 74, scale, 0x74)
}

/// The 33-workload IBM + CloudPhysics corpus used by Figure 18.
pub fn corpus_33(scale: CorpusScale) -> Vec<NamedTrace> {
    synthetic_corpus("ibm-cp", 33, scale, 0x33)
}

fn synthetic_corpus(prefix: &str, count: usize, scale: CorpusScale, seed: u64) -> Vec<NamedTrace> {
    (0..count)
        .map(|i| {
            let kind = i % 3;
            let keys = scale.keys(20_000 + (i as u64 % 7) * 10_000);
            let requests = scale.requests(150_000 + (i as u64 % 5) * 50_000);
            let spec = TraceSpec::new(keys, requests).with_seed(seed * 1_000 + i as u64);
            let trace = match kind {
                0 => lru_friendly(&spec),
                1 => lfu_friendly(&spec),
                _ => mixed(&spec, 0.3 + 0.4 * ((i % 4) as f64 / 3.0)),
            };
            NamedTrace::new(&format!("{prefix}-{i:02}"), trace)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CorpusScale {
        CorpusScale(0.02)
    }

    #[test]
    fn named_traces_are_nonempty_and_deterministic() {
        let a = webmail(tiny());
        let b = webmail(tiny());
        assert!(!a.is_empty());
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.footprint, b.footprint);
        assert!(a.footprint > 0);
    }

    #[test]
    fn figure16_has_five_distinct_workloads() {
        let w = figure16_workloads(tiny());
        assert_eq!(w.len(), 5);
        let names: std::collections::HashSet<_> = w.iter().map(|t| t.name.clone()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn corpora_have_expected_sizes() {
        assert_eq!(corpus_74(tiny()).len(), 74);
        assert_eq!(corpus_33(tiny()).len(), 33);
    }

    #[test]
    fn corpus_members_differ() {
        let corpus = corpus_74(tiny());
        assert_ne!(corpus[0].requests, corpus[1].requests);
        assert_ne!(corpus[1].requests, corpus[2].requests);
    }

    #[test]
    fn scale_controls_request_volume() {
        let small = webmail(CorpusScale(0.02));
        let large = webmail(CorpusScale(0.1));
        assert!(large.len() > small.len());
    }
}
