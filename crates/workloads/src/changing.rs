//! The phase-changing workload of Figure 19.
//!
//! LeCaR evaluates adaptive caching with a synthetic workload that
//! periodically switches between being favourable to LRU and favourable to
//! LFU; the paper reuses it to show that only an adaptive cache tracks both
//! phases.  [`changing_workload`] reproduces that structure over a shared key
//! space.

use crate::request::Request;
use crate::traces::{lfu_friendly, lru_friendly, TraceSpec};

/// Generates a workload with `phases` alternating LRU-/LFU-friendly phases.
///
/// Every phase issues `spec.num_requests / phases` requests against the same
/// key space, starting with an LRU-friendly phase.
pub fn changing_workload(spec: &TraceSpec, phases: usize) -> Vec<Request> {
    let phases = phases.max(1);
    let per_phase = (spec.num_requests / phases as u64).max(1);
    let mut out = Vec::with_capacity(spec.num_requests as usize);
    for phase in 0..phases {
        let phase_spec = TraceSpec {
            num_requests: per_phase,
            seed: spec.seed.wrapping_add(phase as u64 * 0x51ab),
            ..*spec
        };
        let mut chunk = if phase % 2 == 0 {
            lru_friendly(&phase_spec)
        } else {
            lfu_friendly(&phase_spec)
        };
        out.append(&mut chunk);
    }
    out
}

/// Identifies the phase boundaries of a workload produced by
/// [`changing_workload`], useful for plotting per-phase hit rates.
pub fn phase_boundaries(total_requests: usize, phases: usize) -> Vec<usize> {
    let phases = phases.max(1);
    let per_phase = (total_requests / phases).max(1);
    (1..phases).map(|p| p * per_phase).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::footprint;

    #[test]
    fn produces_requested_number_of_phases_and_requests() {
        let spec = TraceSpec::new(5_000, 80_000).with_seed(3);
        let trace = changing_workload(&spec, 4);
        assert_eq!(trace.len() as u64, spec.num_requests);
        assert!(footprint(&trace) <= spec.num_keys);
    }

    #[test]
    fn phases_share_the_key_space() {
        let spec = TraceSpec::new(2_000, 40_000).with_seed(3);
        let trace = changing_workload(&spec, 4);
        let quarter = trace.len() / 4;
        let first: std::collections::HashSet<u64> =
            trace[..quarter].iter().map(|r| r.key).collect();
        let second: std::collections::HashSet<u64> =
            trace[quarter..2 * quarter].iter().map(|r| r.key).collect();
        assert!(first.intersection(&second).count() > 0);
    }

    #[test]
    fn boundaries_split_evenly() {
        assert_eq!(phase_boundaries(100, 4), vec![25, 50, 75]);
        assert_eq!(phase_boundaries(100, 1), Vec::<usize>::new());
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = TraceSpec::new(1_000, 10_000).with_seed(11);
        assert_eq!(changing_workload(&spec, 4), changing_workload(&spec, 4));
    }
}
