//! The cache-backend abstraction and the replay driver.
//!
//! Every system under evaluation (Ditto and all baselines) implements
//! [`CacheBackend`], and every experiment drives requests through
//! [`replay`], so hit rates and penalised throughput are measured with the
//! exact same methodology the paper uses: on a `Get` miss the client pays a
//! configurable penalty (500 µs by default, the latency of a distributed
//! storage back-end) and then inserts the missed object with a `Set`.

use crate::request::{Op, Request};
use serde::{Deserialize, Serialize};

/// A key-value cache under test.
pub trait CacheBackend {
    /// Looks up `key`, returning the cached value on a hit.
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>>;

    /// Inserts or overwrites `key` with `value`.
    fn set(&mut self, key: &[u8], value: &[u8]);

    /// Charges a miss penalty of `us` microseconds of simulated time.
    ///
    /// Backends running on the DM substrate advance the client clock; the
    /// in-memory hit-rate simulators ignore it.
    fn miss_penalty(&mut self, us: u64) {
        let _ = us;
    }

    /// Human-readable name of the backend (used in reports).
    fn backend_name(&self) -> &str {
        "cache"
    }
}

/// Options controlling [`replay`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayOptions {
    /// Insert the missed object after a `Get` miss (cache-aside fill).
    pub insert_on_miss: bool,
    /// Miss penalty in microseconds of simulated time (0 disables it).
    pub miss_penalty_us: u64,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            insert_on_miss: true,
            miss_penalty_us: 0,
        }
    }
}

impl ReplayOptions {
    /// The penalised configuration used by Figures 16 and 19 (500 µs misses).
    pub fn penalized() -> Self {
        ReplayOptions {
            insert_on_miss: true,
            miss_penalty_us: 500,
        }
    }
}

/// Aggregate results of a replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayStats {
    /// Total requests replayed.
    pub requests: u64,
    /// `Get` requests that hit.
    pub hits: u64,
    /// `Get` requests that missed.
    pub misses: u64,
    /// `Set`-type requests (updates + inserts), excluding miss fills.
    pub sets: u64,
}

impl ReplayStats {
    /// Hit rate over `Get` requests (0.0 when no `Get` was issued).
    pub fn hit_rate(&self) -> f64 {
        let gets = self.hits + self.misses;
        if gets == 0 {
            0.0
        } else {
            self.hits as f64 / gets as f64
        }
    }

    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &ReplayStats) {
        self.requests += other.requests;
        self.hits += other.hits;
        self.misses += other.misses;
        self.sets += other.sets;
    }
}

/// Replays `requests` against `backend` and returns hit/miss statistics.
pub fn replay<B, I>(backend: &mut B, requests: I, opts: ReplayOptions) -> ReplayStats
where
    B: CacheBackend + ?Sized,
    I: IntoIterator<Item = Request>,
{
    let mut stats = ReplayStats::default();
    let mut value_buf: Vec<u8> = Vec::new();
    for req in requests {
        stats.requests += 1;
        let key = req.key_bytes();
        match req.op {
            Op::Get => {
                if backend.get(&key).is_some() {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                    if opts.miss_penalty_us > 0 {
                        backend.miss_penalty(opts.miss_penalty_us);
                    }
                    if opts.insert_on_miss {
                        fill_value(&mut value_buf, req.value_size, req.key);
                        backend.set(&key, &value_buf);
                    }
                }
            }
            Op::Update | Op::Insert => {
                stats.sets += 1;
                fill_value(&mut value_buf, req.value_size, req.key);
                backend.set(&key, &value_buf);
            }
        }
    }
    stats
}

/// Fills `buf` with `size` deterministic bytes derived from `key`, so tests
/// can verify that a hit returns the value stored for that key.
pub fn fill_value(buf: &mut Vec<u8>, size: u32, key: u64) {
    buf.clear();
    buf.resize(size.max(1) as usize, 0);
    for (i, b) in buf.iter_mut().enumerate() {
        *b = (key as u8).wrapping_add(i as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Unbounded in-memory backend used to test the driver itself.
    #[derive(Default)]
    struct MapBackend {
        map: HashMap<Vec<u8>, Vec<u8>>,
        penalties: u64,
    }

    impl CacheBackend for MapBackend {
        fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
            self.map.get(key).cloned()
        }
        fn set(&mut self, key: &[u8], value: &[u8]) {
            self.map.insert(key.to_vec(), value.to_vec());
        }
        fn miss_penalty(&mut self, _us: u64) {
            self.penalties += 1;
        }
    }

    #[test]
    fn replay_counts_hits_and_misses() {
        let mut backend = MapBackend::default();
        let requests = vec![
            Request::insert(1),
            Request::get(1),
            Request::get(2),
            Request::get(2),
        ];
        let stats = replay(&mut backend, requests, ReplayOptions::default());
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.sets, 1);
        assert_eq!(stats.hits, 2, "second get(2) hits after cache-aside fill");
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn miss_penalty_is_charged_when_configured() {
        let mut backend = MapBackend::default();
        let stats = replay(
            &mut backend,
            vec![Request::get(1), Request::get(2)],
            ReplayOptions::penalized(),
        );
        assert_eq!(stats.misses, 2);
        assert_eq!(backend.penalties, 2);
    }

    #[test]
    fn insert_on_miss_can_be_disabled() {
        let mut backend = MapBackend::default();
        let opts = ReplayOptions {
            insert_on_miss: false,
            miss_penalty_us: 0,
        };
        let stats = replay(&mut backend, vec![Request::get(1), Request::get(1)], opts);
        assert_eq!(stats.misses, 2);
        assert!(backend.map.is_empty());
    }

    #[test]
    fn fill_value_is_deterministic_per_key() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        fill_value(&mut a, 64, 9);
        fill_value(&mut b, 64, 9);
        assert_eq!(a, b);
        fill_value(&mut b, 64, 10);
        assert_ne!(a, b);
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = ReplayStats {
            requests: 10,
            hits: 4,
            misses: 6,
            sets: 0,
        };
        let b = ReplayStats {
            requests: 5,
            hits: 5,
            misses: 0,
            sets: 2,
        };
        a.merge(&b);
        assert_eq!(a.requests, 15);
        assert_eq!(a.hits, 9);
        assert_eq!(a.hit_rate(), 0.6);
    }

    #[test]
    fn empty_replay_has_zero_hit_rate() {
        let mut backend = MapBackend::default();
        let stats = replay(&mut backend, Vec::new(), ReplayOptions::default());
        assert_eq!(stats.hit_rate(), 0.0);
    }
}
