//! Synthetic trace generators with controllable recency/frequency affinity.
//!
//! The adaptivity experiments only require workloads whose *best* caching
//! algorithm differs (and flips as the cache size or the client mix changes).
//! Two building blocks provide that control:
//!
//! * [`lru_friendly`] — a drifting working set.  Keys are intensely re-used
//!   while they sit inside a sliding window and almost never afterwards, so
//!   recency is an excellent signal and accumulated frequency is misleading.
//! * [`lfu_friendly`] — a stable skewed core with periodic one-off scans.
//!   The scans pollute an LRU cache but never build up frequency, so LFU
//!   retains the hot core and wins.
//!
//! [`mixed`] stitches both together with a configurable ratio, which is how
//! the named real-world stand-ins in [`crate::corpus`] are built.

use crate::request::Request;
use crate::zipf::Zipfian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Number of distinct keys (the workload footprint).
    pub num_keys: u64,
    /// Number of requests to generate.
    pub num_requests: u64,
    /// Value size in bytes.
    pub value_size: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            num_keys: 100_000,
            num_requests: 1_000_000,
            value_size: crate::DEFAULT_VALUE_SIZE,
            seed: 1,
        }
    }
}

impl TraceSpec {
    /// Creates a spec with the given footprint and length.
    pub fn new(num_keys: u64, num_requests: u64) -> Self {
        TraceSpec {
            num_keys: num_keys.max(1),
            num_requests,
            ..TraceSpec::default()
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the value size (builder style).
    pub fn with_value_size(mut self, size: u32) -> Self {
        self.value_size = size;
        self
    }
}

/// Generates an LRU-friendly trace: a working-set window slides over the key
/// space, so recently used keys are re-used soon and stale keys never return.
pub fn lru_friendly(spec: &TraceSpec) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let window = (spec.num_keys / 10).clamp(1, spec.num_keys);
    // The window slides across the whole key space roughly three times over
    // the duration of the trace.
    let slide_every = (spec.num_requests / (spec.num_keys.max(1) * 3).max(1)).max(1);
    let mut window_start: u64 = 0;
    let mut requests = Vec::with_capacity(spec.num_requests as usize);
    let in_window = Zipfian::new(window, 0.6);
    for i in 0..spec.num_requests {
        if i % slide_every == 0 && i > 0 {
            window_start = (window_start + 1) % spec.num_keys;
        }
        let key = if rng.gen::<f64>() < 0.95 {
            // Inside the window, mildly skewed towards its leading edge.
            (window_start + in_window.sample(&mut rng)) % spec.num_keys
        } else {
            rng.gen_range(0..spec.num_keys)
        };
        requests.push(Request::get(key).with_value_size(spec.value_size));
    }
    requests
}

/// Generates an LFU-friendly trace: a stable Zipfian core plus periodic
/// one-off scans that pollute recency-based caches.
pub fn lfu_friendly(spec: &TraceSpec) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let core_keys = (spec.num_keys / 2).max(1);
    let zipf = Zipfian::new(core_keys, 0.9);
    // Scans walk sequentially through the second half of the key space.
    let mut scan_cursor = core_keys;
    let scan_burst = (spec.num_keys / 20).max(16);
    let scan_every = (spec.num_requests / 50).max(scan_burst * 2);
    let mut requests = Vec::with_capacity(spec.num_requests as usize);
    let mut i = 0u64;
    while i < spec.num_requests {
        if i % scan_every == scan_every - 1 {
            // Emit a scan burst of cold, never-repeated keys.
            for _ in 0..scan_burst.min(spec.num_requests - i) {
                requests.push(Request::get(scan_cursor).with_value_size(spec.value_size));
                scan_cursor = core_keys
                    + ((scan_cursor + 1 - core_keys) % (spec.num_keys - core_keys).max(1));
                i += 1;
            }
            continue;
        }
        let key = zipf.sample(&mut rng);
        requests.push(Request::get(key).with_value_size(spec.value_size));
        i += 1;
    }
    requests
}

/// Blends an LRU-friendly and an LFU-friendly stream over the same key space.
///
/// `lru_fraction` ∈ [0, 1] controls how much of the request volume comes from
/// the recency-driven stream.
pub fn mixed(spec: &TraceSpec, lru_fraction: f64) -> Vec<Request> {
    let lru_fraction = lru_fraction.clamp(0.0, 1.0);
    let lru_spec = TraceSpec {
        num_requests: (spec.num_requests as f64 * lru_fraction) as u64,
        ..*spec
    };
    let lfu_spec = TraceSpec {
        num_requests: spec.num_requests - lru_spec.num_requests,
        seed: spec.seed.wrapping_add(0x9e37),
        ..*spec
    };
    let a = lru_friendly(&lru_spec);
    let b = lfu_friendly(&lfu_spec);
    crate::mixer::interleave_streams(&[a, b], spec.seed, 32)
}

/// Number of distinct keys referenced by a request sequence (the footprint
/// the paper sizes caches against).
pub fn footprint(requests: &[Request]) -> u64 {
    let mut keys: Vec<u64> = requests.iter().map(|r| r.key).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> TraceSpec {
        TraceSpec::new(2_000, 40_000).with_seed(7)
    }

    #[test]
    fn traces_have_requested_length() {
        let spec = small_spec();
        assert_eq!(lru_friendly(&spec).len() as u64, spec.num_requests);
        assert_eq!(lfu_friendly(&spec).len() as u64, spec.num_requests);
        assert_eq!(mixed(&spec, 0.5).len() as u64, spec.num_requests);
    }

    #[test]
    fn keys_stay_in_declared_footprint() {
        let spec = small_spec();
        for r in lru_friendly(&spec).iter().chain(lfu_friendly(&spec).iter()) {
            assert!(r.key < spec.num_keys);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        assert_eq!(lru_friendly(&spec), lru_friendly(&spec));
        assert_eq!(lfu_friendly(&spec), lfu_friendly(&spec));
    }

    #[test]
    fn lru_friendly_reuses_recent_keys() {
        // A key referenced now should most often be referenced again within a
        // short horizon (the sliding window guarantees temporal locality).
        let spec = small_spec();
        let trace = lru_friendly(&spec);
        let horizon = 2_000;
        let mut reused = 0;
        let mut sampled = 0;
        for i in (0..trace.len() - horizon).step_by(97) {
            sampled += 1;
            if trace[i + 1..i + horizon]
                .iter()
                .any(|r| r.key == trace[i].key)
            {
                reused += 1;
            }
        }
        assert!(
            reused as f64 / sampled as f64 > 0.6,
            "reuse ratio {}",
            reused as f64 / sampled as f64
        );
    }

    #[test]
    fn lfu_friendly_has_a_stable_hot_core() {
        let spec = small_spec();
        let trace = lfu_friendly(&spec);
        // The 5 % most popular keys should capture the majority of requests.
        let mut counts = std::collections::HashMap::new();
        for r in &trace {
            *counts.entry(r.key).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top = freqs.iter().take(freqs.len() / 20 + 1).sum::<u64>();
        assert!(
            top as f64 / trace.len() as f64 > 0.5,
            "hot-core share {}",
            top as f64 / trace.len() as f64
        );
    }

    #[test]
    fn footprint_counts_unique_keys() {
        let reqs = vec![Request::get(1), Request::get(2), Request::get(1)];
        assert_eq!(footprint(&reqs), 2);
        assert_eq!(footprint(&[]), 0);
    }

    #[test]
    fn mixed_respects_extreme_fractions() {
        let spec = small_spec();
        assert_eq!(mixed(&spec, 0.0).len(), mixed(&spec, 1.0).len());
    }
}
