//! Request and operation types shared by all workloads.

use serde::{Deserialize, Serialize};

/// The operation a request performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Read the object (`GET`).
    Get,
    /// Overwrite the object (`UPDATE` in YCSB terms).
    Update,
    /// Insert a new object (`INSERT` in YCSB terms).
    Insert,
}

/// One request of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Key identifier.  Keys are dense `u64`s; [`Request::key_bytes`] turns
    /// them into the byte keys stored in the cache.
    pub key: u64,
    /// Operation kind.
    pub op: Op,
    /// Value size in bytes (used by `Update`/`Insert` and by the cache-aside
    /// fill after a `Get` miss).
    pub value_size: u32,
}

impl Request {
    /// A `GET` request for `key` with the default 256-byte value size.
    pub fn get(key: u64) -> Self {
        Request {
            key,
            op: Op::Get,
            value_size: crate::DEFAULT_VALUE_SIZE,
        }
    }

    /// An `UPDATE` request for `key`.
    pub fn update(key: u64) -> Self {
        Request {
            key,
            op: Op::Update,
            value_size: crate::DEFAULT_VALUE_SIZE,
        }
    }

    /// An `INSERT` request for `key`.
    pub fn insert(key: u64) -> Self {
        Request {
            key,
            op: Op::Insert,
            value_size: crate::DEFAULT_VALUE_SIZE,
        }
    }

    /// Sets the value size (builder style).
    pub fn with_value_size(mut self, size: u32) -> Self {
        self.value_size = size;
        self
    }

    /// The byte representation of the key as stored in the cache.
    ///
    /// YCSB-style keys ("user4023…") are emulated with a fixed prefix plus
    /// the decimal key id, giving realistic key lengths without storing
    /// strings in every generated request.
    pub fn key_bytes(&self) -> Vec<u8> {
        Self::key_to_bytes(self.key)
    }

    /// Byte representation of an arbitrary key id.
    pub fn key_to_bytes(key: u64) -> Vec<u8> {
        format!("user{key:016}").into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_op() {
        assert_eq!(Request::get(1).op, Op::Get);
        assert_eq!(Request::update(1).op, Op::Update);
        assert_eq!(Request::insert(1).op, Op::Insert);
    }

    #[test]
    fn key_bytes_are_stable_and_unique() {
        let a = Request::get(42).key_bytes();
        let b = Request::get(42).key_bytes();
        let c = Request::get(43).key_bytes();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn with_value_size_overrides_default() {
        let r = Request::get(7).with_value_size(1024);
        assert_eq!(r.value_size, 1024);
        assert_eq!(Request::get(7).value_size, crate::DEFAULT_VALUE_SIZE);
    }
}
