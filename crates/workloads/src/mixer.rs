//! Interleaving utilities modelling concurrent clients and application mixes.
//!
//! §3.2 of the paper shows that hit rates change when (a) several
//! applications with different access patterns share the cache and their
//! client counts shift, and (b) one workload is executed by a varying number
//! of concurrent clients, which reorders the globally observed request
//! stream.  These helpers reproduce both effects deterministically.

use crate::request::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Interleaves several request streams by drawing chunks of up to
/// `max_chunk` requests from a randomly chosen non-empty stream.
///
/// Streams keep their internal order (each models one application or one
/// client), but the global order interleaves them — exactly what a memory
/// node observes when independent clients issue requests concurrently.
pub fn interleave_streams(streams: &[Vec<Request>], seed: u64, max_chunk: usize) -> Vec<Request> {
    let max_chunk = max_chunk.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cursors = vec![0usize; streams.len()];
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let remaining: Vec<usize> = (0..streams.len())
            .filter(|&i| cursors[i] < streams[i].len())
            .collect();
        let pick = remaining[rng.gen_range(0..remaining.len())];
        let chunk = rng.gen_range(1..=max_chunk);
        let end = (cursors[pick] + chunk).min(streams[pick].len());
        out.extend_from_slice(&streams[pick][cursors[pick]..end]);
        cursors[pick] = end;
    }
    out
}

/// Splits `trace` round-robin into `n` per-client streams.
pub fn partition_clients(trace: &[Request], n: usize) -> Vec<Vec<Request>> {
    let n = n.max(1);
    let mut shards = vec![Vec::with_capacity(trace.len() / n + 1); n];
    for (i, r) in trace.iter().enumerate() {
        shards[i % n].push(*r);
    }
    shards
}

/// Models `n` clients concurrently executing `trace`: the trace is
/// partitioned round-robin and the per-client streams are re-interleaved in
/// random chunks.  With `n = 1` the trace is returned unchanged.
pub fn interleave_clients(trace: &[Request], n: usize, seed: u64) -> Vec<Request> {
    if n <= 1 {
        return trace.to_vec();
    }
    let shards = partition_clients(trace, n);
    interleave_streams(&shards, seed, 64)
}

/// Mixes several applications' traces proportionally to their client counts.
///
/// Each application keeps its own key space (keys are offset into disjoint
/// ranges) and contributes requests proportionally to `clients`; the streams
/// are then chunk-interleaved.  Returns the mixed trace.
pub fn mix_applications(apps: &[(Vec<Request>, usize)], seed: u64) -> Vec<Request> {
    let total_clients: usize = apps.iter().map(|(_, c)| *c).sum();
    let total_clients = total_clients.max(1);
    let mut streams = Vec::with_capacity(apps.len());
    for (idx, (trace, clients)) in apps.iter().enumerate() {
        if *clients == 0 || trace.is_empty() {
            streams.push(Vec::new());
            continue;
        }
        // Volume proportional to the client share.
        let share = *clients as f64 / total_clients as f64;
        let take = ((trace.len() as f64) * share).round() as usize;
        let take = take.min(trace.len()).max(1);
        let offset = (idx as u64) << 40;
        let stream: Vec<Request> = trace[..take]
            .iter()
            .map(|r| Request {
                key: r.key | offset,
                ..*r
            })
            .collect();
        streams.push(stream);
    }
    interleave_streams(&streams, seed, 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(start: u64, n: u64) -> Vec<Request> {
        (start..start + n).map(Request::get).collect()
    }

    #[test]
    fn interleave_preserves_all_requests_and_order_within_streams() {
        let a = seq(0, 100);
        let b = seq(1_000, 50);
        let mixed = interleave_streams(&[a.clone(), b.clone()], 3, 8);
        assert_eq!(mixed.len(), 150);
        let from_a: Vec<u64> = mixed.iter().map(|r| r.key).filter(|k| *k < 1_000).collect();
        let from_b: Vec<u64> = mixed
            .iter()
            .map(|r| r.key)
            .filter(|k| *k >= 1_000)
            .collect();
        assert_eq!(from_a, (0..100).collect::<Vec<_>>());
        assert_eq!(from_b, (1_000..1_050).collect::<Vec<_>>());
    }

    #[test]
    fn partition_round_robin() {
        let trace = seq(0, 10);
        let shards = partition_clients(&trace, 3);
        assert_eq!(shards.len(), 3);
        assert_eq!(
            shards[0].iter().map(|r| r.key).collect::<Vec<_>>(),
            vec![0, 3, 6, 9]
        );
        assert_eq!(
            shards[1].iter().map(|r| r.key).collect::<Vec<_>>(),
            vec![1, 4, 7]
        );
        assert_eq!(
            shards[2].iter().map(|r| r.key).collect::<Vec<_>>(),
            vec![2, 5, 8]
        );
    }

    #[test]
    fn single_client_interleaving_is_identity() {
        let trace = seq(0, 20);
        assert_eq!(interleave_clients(&trace, 1, 9), trace);
    }

    #[test]
    fn more_clients_reorder_the_trace() {
        let trace = seq(0, 1_000);
        let reordered = interleave_clients(&trace, 16, 9);
        assert_eq!(reordered.len(), trace.len());
        assert_ne!(reordered, trace);
        let mut keys: Vec<u64> = reordered.iter().map(|r| r.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn interleaving_is_deterministic_per_seed() {
        let trace = seq(0, 500);
        assert_eq!(
            interleave_clients(&trace, 8, 1),
            interleave_clients(&trace, 8, 1)
        );
        assert_ne!(
            interleave_clients(&trace, 8, 1),
            interleave_clients(&trace, 8, 2)
        );
    }

    #[test]
    fn application_mix_respects_client_shares() {
        let a = seq(0, 10_000);
        let b = seq(0, 10_000);
        let mixed = mix_applications(&[(a, 3), (b, 1)], 5);
        let app0 = mixed.iter().filter(|r| r.key >> 40 == 0).count();
        let app1 = mixed.iter().filter(|r| r.key >> 40 == 1).count();
        assert!(app0 > app1 * 2, "app0={app0} app1={app1}");
        // Key spaces are disjoint.
        assert!(mixed.iter().all(|r| r.key >> 40 <= 1));
    }

    #[test]
    fn zero_client_apps_contribute_nothing() {
        let a = seq(0, 100);
        let b = seq(0, 100);
        let mixed = mix_applications(&[(a, 0), (b, 2)], 5);
        assert!(mixed.iter().all(|r| r.key >> 40 == 1));
    }
}
