//! Zipfian key-popularity distribution (the YCSB generator).

use rand::Rng;

/// A Zipfian distribution over `0..n` with skew parameter θ, implemented with
/// the rejection-free formula used by YCSB (Gray et al.).
///
/// θ = 0.99 (the YCSB default and the paper's setting) makes roughly 10 % of
/// the keys receive ~90 % of the accesses.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Creates a Zipfian distribution over `0..n` with skew `theta`.
    ///
    /// The Gray et al. inverse works on either side of θ = 1 — for θ > 1
    /// `alpha` goes negative and `eta` flips sign, but the mapping from the
    /// uniform draw to a rank stays monotone — so super-skewed workloads
    /// (e.g. the θ = 1.2 point of the local-tier sweep) use the same
    /// rejection-free formula.  Only θ = 1 itself is excluded: the inverse
    /// needs `1 - θ ≠ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `theta <= 0` or `theta == 1`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "key space must not be empty");
        assert!(
            theta > 0.0 && theta != 1.0,
            "theta must be positive and != 1 (the inverse divides by 1-θ)"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    /// The YCSB default distribution (θ = 0.99) over `0..n`.
    pub fn ycsb(n: u64) -> Self {
        Zipfian::new(n, 0.99)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation; the evaluation uses at most ~10 M keys, for which
        // this costs a few tens of milliseconds once per generator.
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Number of distinct keys.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws the *rank* of a key: rank 0 is the most popular key.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Draws a key id, scattering ranks over the key space so that popular
    /// keys are not clustered at low ids (YCSB's `ScrambledZipfian`).
    pub fn sample_scrambled<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.sample(rng);
        scramble(rank) % self.n
    }

    /// The skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// ζ(2, θ), exposed for tests.
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// FNV-style scrambling of a rank into a pseudo-random but stable key id.
pub fn scramble(v: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in v.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_in_range() {
        let z = Zipfian::ycsb(1_000);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1_000);
            assert!(z.sample_scrambled(&mut rng) < 1_000);
        }
    }

    #[test]
    fn distribution_is_skewed() {
        let z = Zipfian::ycsb(10_000);
        let mut rng = StdRng::seed_from_u64(7);
        let mut top100 = 0u64;
        let total = 100_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 100 {
                top100 += 1;
            }
        }
        // With θ=0.99 the first 1 % of ranks should draw well over a third of
        // all requests.
        assert!(
            top100 as f64 / total as f64 > 0.35,
            "top-100 share {}",
            top100 as f64 / total as f64
        );
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipfian::ycsb(1_000);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u64; 1_000];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max);
        assert!(counts[0] > counts[500] * 10);
    }

    #[test]
    fn scrambling_spreads_hot_keys() {
        let z = Zipfian::ycsb(1_000_000);
        let mut rng = StdRng::seed_from_u64(5);
        let mut below_thousand = 0;
        for _ in 0..10_000 {
            if z.sample_scrambled(&mut rng) < 1_000 {
                below_thousand += 1;
            }
        }
        // Scrambled keys should not cluster in the low id range.
        assert!(below_thousand < 200);
    }

    #[test]
    fn scramble_is_deterministic() {
        assert_eq!(scramble(12345), scramble(12345));
        assert_ne!(scramble(1), scramble(2));
    }

    #[test]
    #[should_panic]
    fn empty_keyspace_panics() {
        let _ = Zipfian::new(0, 0.99);
    }

    #[test]
    #[should_panic]
    fn invalid_theta_panics() {
        let _ = Zipfian::new(10, 1.0);
    }

    #[test]
    fn super_skew_is_sharper_and_in_range() {
        let mild = Zipfian::new(10_000, 0.99);
        let sharp = Zipfian::new(10_000, 1.2);
        let mut rng = StdRng::seed_from_u64(11);
        let total = 100_000;
        let (mut top_mild, mut top_sharp) = (0u64, 0u64);
        for _ in 0..total {
            if mild.sample(&mut rng) < 100 {
                top_mild += 1;
            }
            let rank = sharp.sample(&mut rng);
            assert!(rank < 10_000);
            if rank < 100 {
                top_sharp += 1;
            }
        }
        // θ = 1.2 concentrates strictly more mass on the head than the
        // YCSB default, and rank 0 stays the mode.
        assert!(
            top_sharp > top_mild,
            "θ=1.2 top-100 share {top_sharp} must exceed θ=0.99 share {top_mild}"
        );
    }
}
