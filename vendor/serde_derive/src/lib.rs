//! Inert derive macros for the vendored `serde` stand-in.
//!
//! The companion `serde` crate blanket-implements its marker traits, so the
//! derives have nothing to generate; they only need to exist (and accept the
//! `#[serde(...)]` helper attribute) for `#[derive(Serialize, Deserialize)]`
//! to keep compiling without network access to the real crates.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
