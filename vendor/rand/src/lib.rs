//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! Implements exactly the API surface this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`] — over a xoshiro256++ generator seeded with SplitMix64.
//! The trait structure mirrors rand 0.8 (`RngCore` + blanket-implemented
//! `Rng`, `Distribution`/`SampleRange` helper traits) so call sites written
//! against the real crate, including `R: Rng + ?Sized` bounds, compile
//! unchanged and the workspace can switch back to crates.io `rand` by
//! editing only the workspace manifest.
//!
//! Streams are deterministic per seed, which is all the experiment harnesses
//! rely on; the statistical quality of xoshiro256++ comfortably exceeds what
//! the workload generators need.

use std::ops::{Range, RangeInclusive};

/// Core entropy source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The `Standard` distribution: uniform over a type's natural range
/// (`[0, 1)` for floats).
pub struct Standard;

/// A distribution producing values of type `T` (subset of
/// `rand::distributions::Distribution`).
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit widening multiply.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// A range that can be sampled from (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// Panics if the range is empty, matching `rand`'s behaviour.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <Standard as Distribution<f64>>::sample(&Standard, self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna), seeded with
    /// SplitMix64 exactly like the reference implementation recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_bounds() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sample(&mut rng) < 100);
    }
}
