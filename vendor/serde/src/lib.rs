//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, and nothing in
//! this repository actually serialises data through serde (the benchmark and
//! figure harnesses write their JSON by hand).  The real dependency is only
//! a *bound*: types carry `#[derive(Serialize, Deserialize)]` and a couple of
//! generic functions require `T: Serialize + DeserializeOwned`.
//!
//! This crate satisfies those bounds with blanket-implemented marker traits
//! and inert derive macros, so the public API of the workspace keeps the
//! exact same serde-shaped surface and can be switched back to the real
//! crates.io `serde` by flipping one line in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}
