//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the `parking_lot` API subset this workspace uses — [`Mutex`] and
//! [`RwLock`] with panic-free, non-poisoning `lock()`/`read()`/`write()` —
//! so code written against the real crate compiles unchanged without network
//! access.  Poisoning is deliberately swallowed (a poisoned lock simply
//! returns the inner guard), matching parking_lot's semantics of not
//! propagating panics between lock holders.

use std::sync;

/// A mutex with `parking_lot`-style (non-poisoning, guard-returning) API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.  Never panics on
    /// poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`-style API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.  Never panics on poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.  Never panics on poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_still_locks() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
